(** Typed RPC: schemas on the datapath (paper §3.1's "layer on top").

    Bridges {!Codec} schemas and eRPC msgbufs while preserving the
    zero-copy story: requests encode directly into the TX msgbuf, servers
    decode straight from the RX ring view, and every encode/decode charges
    the modeled per-field CPU cost (or the NIC-offload cost, under
    [Config.codec_offload]) to the CPU that would do the work — so typed
    workloads pay for marshalling in the same currency as the rest of the
    datapath.

    The wire [backend] defaults to the endpoint's [Config.codec_backend]
    everywhere; pass [?backend] to pin one (e.g. legacy compact formats).
    [?charge:false] keeps a call timing-neutral — used by pre-existing
    services whose handler charges already account for marshalling. *)

(** {1 Msgbuf encode/decode} *)

val write : ?backend:Codec.backend -> 'a Codec.t -> Msgbuf.t -> 'a -> unit
(** [write c m v] resizes [m] to the encoded size and encodes [v] at
    offset 0. Raising behavior (the buffer is not mutated in any of these
    cases): [Invalid_argument] if [m] is eRPC-owned (in flight — this
    includes RX-ring views), if the encoded size exceeds [m]'s capacity,
    or if the codec lacks the requested backend. Checked {e before} the
    resize, so composing sized wrappers like [Codec.with_checksum] cannot
    leave a half-resized buffer behind. *)

val read : ?backend:Codec.backend -> 'a Codec.t -> Msgbuf.t -> 'a
(** Decode a whole message from the msgbuf's current contents, zero-copy
    (reads the underlying storage in place; valid on RX views). Raises
    {!Codec.Decode_error} on malformed input. *)

val alloc_and_write : ?backend:Codec.backend -> 'a Codec.t -> 'a -> Msgbuf.t
(** An exactly-sized fresh msgbuf holding the encoding of the value. *)

(** {1 Client side} *)

val enqueue_request :
  Rpc.t ->
  Session.session ->
  req_type:int ->
  req_codec:'req Codec.t ->
  resp_codec:'resp Codec.t ->
  ?backend:Codec.backend ->
  ?charge:bool ->
  ?req_buf:Msgbuf.t ->
  ?resp_buf:Msgbuf.t ->
  ?resp_max:int ->
  'req ->
  cont:(('resp, Err.t) result -> unit) ->
  unit
(** Typed [Rpc.enqueue_request]: encodes the request (into [req_buf] if
    given, else a fresh exactly-sized msgbuf), charges serialization
    before admission, and hands [cont] the {e decoded} response —
    deserialization is charged inside the request's lifetime, before its
    completion milestone. A response that fails to decode surfaces as
    [Error (Session_error _)].

    The response buffer is [resp_buf] if given, else sized from
    [resp_max], the codec's flat footprint (flat backend), or its static
    compact bound — an unbounded response codec with none of these raises
    [Invalid_argument]. [charge] defaults to [true]. *)

(** {1 Server side} *)

val read_request : ?backend:Codec.backend -> ?charge:bool -> Req_handle.t -> 'a Codec.t -> 'a
(** Decode the request zero-copy from the handler's msgbuf (usually an RX
    ring view) and charge deserialization to the thread running the
    handler. *)

val respond : ?backend:Codec.backend -> ?charge:bool -> Req_handle.t -> 'a Codec.t -> 'a -> unit
(** Encode a typed response through [Req_handle.init_response] (so the
    slot's preallocated MTU buffer is used when it fits), charge
    serialization, and enqueue it. *)

(** {1 Lazy request views}

    Under the flat backend, a handler that touches two fields of a
    ten-field request shouldn't pay for ten: a view defers decoding and
    charges per leaf actually read — the zero-copy/flat layout's whole
    advantage. Under the compact backend (no fixed offsets) the view
    decodes eagerly, charging the full message once, and accessors become
    plain projections. *)

type 'a view

val view_request : ?charge:bool -> Req_handle.t -> 'a Codec.t -> 'a view
(** A view over the handler's request in the endpoint's configured
    backend. Lazy iff the backend is flat and the codec is flat-capable. *)

val view_int : 'a view -> leaf:int -> fallback:('a -> int) -> int
(** Read one integer leaf (charged as one field); [fallback] projects the
    value when the view was decoded eagerly. *)

val view_string : 'a view -> leaf:int -> fallback:('a -> string) -> string

val force : 'a view -> 'a
(** The fully decoded value (charged on first call for lazy views). *)

val is_lazy : 'a view -> bool
