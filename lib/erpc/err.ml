type t = Server_failure | Peer_unreachable | Session_error of string

let to_string = function
  | Server_failure -> "server failure"
  | Peer_unreachable -> "peer unreachable"
  | Session_error s -> "session error: " ^ s

let pp fmt t = Format.pp_print_string fmt (to_string t)
