type t = {
  scale : float;
  loop_overhead : int;
  rx_pkt : int;
  tx_data_pkt : int;
  tx_ctrl_pkt : int;
  rdtsc : int;
  timely_update : int;
  wheel_insert : int;
  wheel_poll_pkt : int;
  dyn_alloc : int;
  memcpy_fixed : int;
  memcpy_per_256b : int;
  handler_dispatch : int;
  continuation : int;
  worker_handoff : int;
  enqueue_request : int;
  credit_logic : int;
  cc_check : int;
  ser_field : int;
  deser_field : int;
  flat_ser_field : int;
  flat_deser_field : int;
  codec_offload_post : int;
  codec_offload_per_256b : int;
  shm_ring_post : int;
  shm_seal : int;
  shm_unseal : int;
  shm_share_desc : int;
  shm_ownership_check : int;
}

let default =
  {
    scale = 1.0;
    loop_overhead = 20;
    rx_pkt = 28;
    tx_data_pkt = 30;
    tx_ctrl_pkt = 22;
    rdtsc = 8;
    timely_update = 15;
    wheel_insert = 7;
    wheel_poll_pkt = 4;
    dyn_alloc = 35;
    memcpy_fixed = 11;
    memcpy_per_256b = 27;
    handler_dispatch = 16;
    continuation = 14;
    worker_handoff = 200;
    enqueue_request = 20;
    credit_logic = 4;
    cc_check = 6;
    ser_field = 6;
    deser_field = 8;
    flat_ser_field = 2;
    flat_deser_field = 1;
    codec_offload_post = 45;
    codec_offload_per_256b = 3;
    shm_ring_post = 12;
    shm_seal = 30;
    shm_unseal = 30;
    shm_share_desc = 18;
    shm_ownership_check = 15;
  }

let scaled t ns = int_of_float (ceil (t.scale *. float_of_int ns))

(* Small copies are cache-resident and cost only the fixed term; chunks
   beyond the first 256 B pay memory bandwidth. *)
let memcpy_cost t bytes =
  if bytes <= 0 then 0
  else scaled t (t.memcpy_fixed + (t.memcpy_per_256b * (((bytes + 255) / 256) - 1)))

let for_cluster (cluster : Transport.Cluster.t) = { default with scale = cluster.cpu_scale }

(* Full scaled cost of one encode or decode. On-CPU codecs pay per touched
   field (branchier on decode: validation) plus the bulk byte movement; a
   NIC-offloaded codec frees the CPU of both and pays only a fixed
   descriptor-post/doorbell cost plus a small per-chunk DMA-setup term —
   the Dagger/RPCAcc ablation. *)
let codec_cost t ~deser ~(backend : Codec.backend) ~offload ~leaves ~bytes =
  if offload then
    scaled t
      (t.codec_offload_post
      + if bytes <= 0 then 0 else t.codec_offload_per_256b * (((bytes + 255) / 256) - 1))
  else
    let per_field =
      match (backend, deser) with
      | Codec.Compact, false -> t.ser_field
      | Codec.Compact, true -> t.deser_field
      | Codec.Flat, false -> t.flat_ser_field
      | Codec.Flat, true -> t.flat_deser_field
    in
    scaled t (per_field * leaves) + memcpy_cost t bytes

(* Shared-memory ring charges (see {!Shm}), pre-scaled so the transport
   never re-applies the cluster CPU scale. The serialize path pays the
   slot publish plus a plain memcpy of the payload; the share path pays a
   flat descriptor publish with the MemRPC safety charges: seal on send,
   unseal + ownership-transfer check on receive. With the default values
   the two paths cross near 1 KB payloads — below it copying is cheaper
   than guarding, above it sharing wins. *)
let shm_costs t =
  {
    Shm.serialize_ns = (fun bytes -> scaled t t.shm_ring_post + memcpy_cost t bytes);
    share_tx_ns = scaled t (t.shm_ring_post + t.shm_share_desc + t.shm_seal);
    share_rx_ns = scaled t (t.shm_unseal + t.shm_ownership_check);
    ring_post_ns = scaled t t.shm_ring_post;
  }
