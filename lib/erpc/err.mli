(** Errors delivered to client continuations and session callbacks. *)

type t =
  | Server_failure  (** remote node declared failed (Appendix B) *)
  | Peer_unreachable
      (** session reset after [Config.max_retransmits] consecutive RTOs
          without progress (§4.3) — the peer crashed, restarted and lost
          session state, or is partitioned away *)
  | Session_error of string  (** connect refused / session torn down *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
