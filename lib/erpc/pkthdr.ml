type pkt_type = Req | Cr | Rfr | Resp

type t = {
  req_type : int;
  msg_size : int;
  dest_session : int;
  pkt_type : pkt_type;
  pkt_num : int;
  req_num : int;
  token : int;
  ecn_echo : bool;
}

let size = 16

(* FNV-1a, truncated to OCaml's int (the 64-bit offset basis loses its top
   bit to the tag). Fast enough to run on every packet and plenty for
   detecting injected bit flips (we model error detection, not adversarial
   collisions). *)
let fnv_offset = 0x4bf29ce484222325
let fnv_prime = 0x100000001b3

let fnv_step h v = (h lxor v) * fnv_prime land max_int

let bytes_checksum ?(init = fnv_offset) b ~off ~len =
  let h = ref init in
  for i = off to off + len - 1 do
    h := fnv_step !h (Char.code (Bytes.unsafe_get b i))
  done;
  !h

let pkt_type_code = function Req -> 0 | Cr -> 1 | Rfr -> 2 | Resp -> 3

(* Wire checksum over every header field and the payload bytes. ECN marks
   are applied by switches in flight, so (like IP's ToS handling) they are
   excluded from the covered fields. *)
let checksum t ~data ~off ~len =
  let h = fnv_offset in
  let h = fnv_step h t.req_type in
  let h = fnv_step h t.msg_size in
  let h = fnv_step h t.dest_session in
  let h = fnv_step h (pkt_type_code t.pkt_type) in
  let h = fnv_step h t.pkt_num in
  let h = fnv_step h t.req_num in
  let h = fnv_step h t.token in
  let h = fnv_step h (if t.ecn_echo then 1 else 0) in
  bytes_checksum ~init:h data ~off ~len

let pkt_type_to_string = function
  | Req -> "REQ"
  | Cr -> "CR"
  | Rfr -> "RFR"
  | Resp -> "RESP"

let pp fmt t =
  Format.fprintf fmt "[%s rt=%d sess=%d req#%d pkt#%d sz=%d]" (pkt_type_to_string t.pkt_type)
    t.req_type t.dest_session t.req_num t.pkt_num t.msg_size

let data_bytes t ~mtu =
  match t.pkt_type with
  | Cr | Rfr -> 0
  | Req | Resp ->
      let offset = t.pkt_num * mtu in
      if offset >= t.msg_size then 0 else min mtu (t.msg_size - offset)
