(** Sessions and session slots (paper §4.3, §5).

    A session is a one-to-one connection between two Rpc endpoints; it
    maintains [credits] for BDP flow control and an array of [req_window]
    slots, each tracking one outstanding RPC. Slots, per-role info records
    and preallocated buffers are allocated lazily so that experiments with
    millions of mostly-idle sessions (Fig 5) stay within memory.

    The records are deliberately transparent: {!Rpc} owns all protocol
    logic; this module only defines state and small invariant-preserving
    helpers.

    Wire-protocol positions: a client slot's packets are totally ordered.
    TX item [k] is request packet [k] for [k < n_req_pkts], and the RFR for
    response packet [k - n_req_pkts + 1] otherwise. RX item [i] is the CR
    for request packet [i] for [i < n_req_pkts - 1], and response packet
    [i - (n_req_pkts - 1)] otherwise. RX item [i] acknowledges TX item [i],
    so go-back-N rollback is simply [num_tx <- num_rx]. *)

type conn_state =
  | Connect_pending
  | Connected
  | Error of string
  | Destroyed

type role = Client | Server

(** A queued request: what the application hands to [enqueue_request].
    [on_complete] runs on the dispatch thread just before [cont] on
    success only, with the filled response — the seam typed RPC uses to
    charge response deserialization inside the request's own lifetime. *)
type req_args = {
  req_type : int;
  req : Msgbuf.t;
  resp : Msgbuf.t;
  on_complete : Msgbuf.t -> unit;
  cont : (unit, Err.t) result -> unit;
}

type client_info = {
  mutable num_tx : int;  (** TX items sent (monotone within a request, rolled back on RTO) *)
  mutable num_rx : int;  (** in-order RX items received *)
  mutable max_tx : int;  (** highest TX item ever sent for this request *)
  mutable n_req_pkts : int;
  mutable n_resp_pkts : int;  (** -1 until response packet 0 arrives *)
  mutable tx_ts : Sim.Time.t array;  (** timestamps of in-flight TX items, ring of size credits *)
  mutable wheel_refs : int;  (** packets of this slot queued in the rate limiter *)
  mutable retx_in_wheel : bool;
      (** a retransmitted packet sits in the rate limiter: responses are
          dropped until the wheel drains (Appendix C) *)
  mutable retransmits : int;
  mutable consec_retx : int;
      (** consecutive RTOs since the last accepted RX item; reaching
          [Config.max_retransmits] resets the session (§4.3) *)
}

type server_info = {
  mutable num_rx : int;  (** in-order request packets received *)
  mutable n_req_pkts : int;
  mutable handler_done : bool;  (** response enqueued *)
  mutable handler_running : bool;
  mutable req_buf : Msgbuf.t option;
  mutable spare_req_buf : Msgbuf.t option;
      (** the previous request's assembly buffer, recycled for the next
          request on this slot when large enough (eRPC pre-allocates
          per-sslot msgbufs rather than allocating per request) *)
  mutable resp_buf : Msgbuf.t option;
  mutable ecn_pending : bool;
      (** the request packet that triggered the handler carried an ECN
          mark; echoed on response packet 0 *)
}

type sslot = {
  index : int;
  session : session;
  mutable req_num : int;  (** current request number; [req_num mod req_window = index] *)
  mutable busy : bool;
  mutable args : req_args option;  (** client side: the in-flight request *)
  mutable cli : client_info option;
  mutable srv : server_info option;
  mutable in_txq : bool;
  mutable in_credit_waitq : bool;  (** parked waiting for session credits *)
  mutable needs_retx : bool;
  mutable rto : Sim.Timer.t option;
  mutable issue_time : Sim.Time.t;
  mutable prealloc_resp : Msgbuf.t option;  (** server side, MTU-sized *)
}

and session = {
  sn : int;  (** session number local to the owning Rpc *)
  role : role;
  token : int;
      (** fabric-wide unique session token; both endpoints of a session
          carry the client-chosen token and stamp it into every data
          packet, so stale traffic for a recycled [sn] is detectable *)
  remote_host : int;
  remote_rpc_id : int;
  mutable remote_sn : int;  (** peer's session number; -1 until connected *)
  mutable state : conn_state;
  slots : sslot option array;
  mutable credits : int;
  credit_limit : int;
  backlog : req_args Queue.t;
  credit_waiters : sslot Queue.t;
      (** slots with sendable packets blocked on credits; re-queued for TX
          when a credit returns *)
  mutable cc : Cc.t option;  (** client sessions under congestion control *)
  mutable next_tx_ts : Sim.Time.t;  (** Carousel pacing cursor *)
  mutable connect_cb : (unit, Err.t) result -> unit;
  mutable retransmits : int;  (** cumulative, across all slots and requests *)
}

val create :
  sn:int ->
  role:role ->
  token:int ->
  remote_host:int ->
  remote_rpc_id:int ->
  credits:int ->
  req_window:int ->
  session

(** Slot [i], allocated on first use. *)
val slot : session -> int -> sslot

(** The client info record of a slot, allocated on first use with a
    timestamp ring of [credits] entries. *)
val client_info : sslot -> credits:int -> client_info

val server_info : sslot -> server_info

(** First idle slot, if any. *)
val free_slot : session -> req_window:int -> sslot option

(** Sum of (num_tx - num_rx) over busy client slots — must equal
    [credit_limit - credits]; checked by tests. *)
val outstanding_packets : session -> int
