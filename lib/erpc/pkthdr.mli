(** eRPC packet headers (paper §4.2.1, §5.1).

    Every packet carries a 16 B header with the request handler type, total
    message size, destination session, packet type and sequencing state.
    Four packet types exist: request data, response data, credit return
    (CR), and request-for-response (RFR). CRs and RFRs are header-only 16 B
    packets. *)

type pkt_type =
  | Req  (** request data packet *)
  | Cr  (** credit return: acks request packet [pkt_num] *)
  | Rfr  (** request-for-response: asks for response packet [pkt_num] *)
  | Resp  (** response data packet *)

type t = {
  req_type : int;  (** handler type registered at the server *)
  msg_size : int;  (** total message bytes in this packet's direction *)
  dest_session : int;  (** session number at the receiving endpoint *)
  pkt_type : pkt_type;
  pkt_num : int;
      (** Req/Resp: index of this data packet within the message;
          Cr: index of the request packet being acknowledged;
          Rfr: index of the response packet being requested. *)
  req_num : int;  (** per-slot request sequence number (at-most-once) *)
  token : int;
      (** session uniqueness token: both endpoints stamp the client-chosen
          fabric-unique token so a receiver can drop stale packets
          addressed to a recycled session number (e.g. from a peer that
          has not yet noticed a crash-restart) *)
  ecn_echo : bool;
      (** server->client: the acknowledged client packet carried an ECN
          mark (DCQCN's congestion notification, reflected by the
          receiver) *)
}

(** Size of the eRPC header on the wire. *)
val size : int

(** {2 Wire checksum}

    FNV-1a over all header fields and a payload slice. The checksum the
    real NIC would compute/verify per packet; in the simulator corruption
    is modeled as a frame flag (see {!Wire.corrupt}), so this kernel is
    kept for framing code and microbenchmarks. ECN marks are switch-mutated
    in flight and therefore not covered. *)

val checksum : t -> data:bytes -> off:int -> len:int -> int

(** FNV-1a over a byte range — the same kernel, reusable by higher-level
    framing (see [Codec.with_checksum]). *)
val bytes_checksum : ?init:int -> bytes -> off:int -> len:int -> int

val pkt_type_to_string : pkt_type -> string
val pp : Format.formatter -> t -> unit

(** Payload bytes carried by a data packet: [pkt_num]-th MTU-sized chunk of
    an [msg_size]-byte message. Zero for CR/RFR. *)
val data_bytes : t -> mtu:int -> int
