(** The simulated deployment: one engine, one cluster profile, one network,
    shared eRPC configuration, plus the out-of-band session-management
    plane and failure injection.

    Experiments create a fabric, then one {!Nexus} per host and {!Rpc}s per
    thread. Killing a host silences it immediately; every other host learns
    of the failure after the management-plane detection timeout, upon which
    Rpcs fail their pending requests with {!Err.Server_failure} (paper
    Appendix B). *)

type t

val create :
  ?seed:int64 ->
  ?config:Config.t ->
  ?cost:Cost_model.t ->
  ?trace:Obs.Trace.t ->
  Transport.Cluster.t ->
  t
(** [?trace] installs an event trace on the engine before the network is
    built, so every component's instrumentation hooks are live. Without it
    the engine keeps [Obs.Trace.disabled] and hooks are branch-only. *)

val engine : t -> Sim.Engine.t

(** A fabric-wide unique session token, never reused — including across
    crash-restart cycles of a host. Stamped into every data packet so a
    receiver can reject stale traffic addressed to a recycled session
    number (real eRPC's session uniqueness token). *)
val fresh_session_token : t -> int
val cluster : t -> Transport.Cluster.t
val net : t -> Netsim.Network.t
val config : t -> Config.t
val cost : t -> Cost_model.t

(** The fabric-wide shared-memory segment directory (one per deployment;
    endpoints register their rings when [shm_enabled]). Its liveness gate
    tracks {!host_dead}, so ring deliveries into a crashed process vanish
    like network deliveries. *)
val shm_hub : t -> Shm.hub

(** [colocated t a b]: hosts [a] and [b] are processes on the same
    physical machine (see {!Transport.Cluster.colocate}); reflexive. *)
val colocated : t -> int -> int -> bool

(** {2 Session-management plane} *)

val register_sm : t -> host:int -> rpc_id:int -> (Sm.msg -> unit) -> unit

(** Deliver an SM message after the configured SM latency. Messages to dead
    hosts vanish. *)
val send_sm : t -> dst_host:int -> dst_rpc:int -> Sm.msg -> unit

(** {2 Failure injection} *)

(** [on_host_failure t f] registers [f], called with the failed host id
    once the failure is detected (after [sm_failure_timeout_ns]). *)
val on_host_failure : t -> (int -> unit) -> unit

(** [on_host_killed t f] registers [f], called synchronously when a host is
    killed — used by the victim itself to stop executing. *)
val on_host_killed : t -> (int -> unit) -> unit

(** [on_host_restart t f] registers [f], called when a crashed host comes
    back up (see {!crash_host}). *)
val on_host_restart : t -> (int -> unit) -> unit

val kill_host : t -> int -> unit

(** [crash_host t host ~down_ns] is crash-with-restart: the host is silenced
    like {!kill_host}, then comes back after [down_ns] having lost all
    session state. Failure detection fires only if the host is still down
    when [sm_failure_timeout_ns] expires, so a fast restart is invisible to
    the management plane and peers must recover via bounded retransmission
    ({!Err.Peer_unreachable}). No-op if the host is already dead. *)
val crash_host : t -> int -> down_ns:int -> unit

val host_dead : t -> int -> bool
