(* Typed RPC over msgbufs: encode directly into TX buffers, decode
   zero-copy from RX views, and charge the modeled per-field codec cost to
   the owning CPU at the point on the datapath where the work happens. *)

let write ?(backend = Codec.Compact) c m v =
  if Msgbuf.owner m = Msgbuf.Owned_by_erpc then
    invalid_arg "Typed.write: msgbuf is in flight (eRPC-owned)";
  let n = Codec.encoded_size ~backend c v in
  if n > Msgbuf.max_size m then
    invalid_arg
      (Printf.sprintf "Typed.write: encoded size %d exceeds msgbuf capacity %d" n
         (Msgbuf.max_size m));
  Msgbuf.resize m n;
  ignore (Codec.encode ~backend c (Msgbuf.unsafe_bytes m) (Msgbuf.unsafe_offset m) v)

let read ?(backend = Codec.Compact) c m =
  Codec.decode ~backend c (Msgbuf.unsafe_bytes m) ~off:(Msgbuf.unsafe_offset m)
    ~len:(Msgbuf.size m)

let alloc_and_write ?(backend = Codec.Compact) c v =
  let m = Msgbuf.alloc ~max_size:(Codec.encoded_size ~backend c v) in
  write ~backend c m v;
  m

(* {2 Client side} *)

let enqueue_request rpc sess ~req_type ~req_codec ~resp_codec ?backend ?(charge = true)
    ?req_buf ?resp_buf ?resp_max v ~cont =
  let backend = match backend with Some b -> b | None -> fst (Rpc.codec_mode rpc) in
  let n = Codec.encoded_size ~backend req_codec v in
  let req =
    match req_buf with
    | Some m ->
        write ~backend req_codec m v;
        m
    | None -> alloc_and_write ~backend req_codec v
  in
  (* Serialization happens (and is charged) before admission, so its span
     sits between the request's start and its first TX. *)
  if charge then
    Rpc.charge_codec ~backend rpc ~deser:false
      ~leaves:(Codec.encoded_leaves ~backend req_codec v)
      ~bytes:n;
  let resp =
    match resp_buf with
    | Some m -> m
    | None ->
        let max_size =
          match resp_max with
          | Some n -> n
          | None -> (
              match backend with
              | Codec.Flat when Codec.flat_capable resp_codec -> Codec.flat_size resp_codec
              | _ -> (
                  match Codec.bound resp_codec with
                  | Some b -> b
                  | None ->
                      invalid_arg
                        "Typed.enqueue_request: response codec is unbounded; pass \
                         ~resp_max or ~resp_buf"))
        in
        Msgbuf.alloc ~max_size
  in
  let decoded = ref None in
  let on_complete resp_m =
    match read ~backend resp_codec resp_m with
    | r ->
        if charge then
          Rpc.charge_codec ~backend rpc ~deser:true
            ~leaves:(Codec.encoded_leaves ~backend resp_codec r)
            ~bytes:(Msgbuf.size resp_m);
        decoded := Some (Ok r)
    | exception Codec.Decode_error e ->
        decoded := Some (Error (Err.Session_error ("response decode: " ^ e)))
  in
  Rpc.enqueue_request_hooked rpc sess ~req_type ~req ~resp ~on_complete ~cont:(function
    | Ok () -> (
        match !decoded with
        | Some r -> cont r
        | None -> cont (Error (Err.Session_error "typed completion without response")))
    | Error e -> cont (Error e))

(* {2 Server side} *)

let read_request ?backend ?(charge = true) h c =
  let backend = match backend with Some b -> b | None -> fst (Req_handle.codec_mode h) in
  let m = Req_handle.get_request h in
  let v = read ~backend c m in
  if charge then
    Req_handle.charge_codec h ~deser:true ~backend
      ~leaves:(Codec.encoded_leaves ~backend c v)
      ~bytes:(Msgbuf.size m);
  v

let respond ?backend ?(charge = true) h c v =
  let backend = match backend with Some b -> b | None -> fst (Req_handle.codec_mode h) in
  let n = Codec.encoded_size ~backend c v in
  let resp = Req_handle.init_response h ~size:n in
  ignore (Codec.encode ~backend c (Msgbuf.unsafe_bytes resp) (Msgbuf.unsafe_offset resp) v);
  if charge then
    Req_handle.charge_codec h ~deser:false ~backend
      ~leaves:(Codec.encoded_leaves ~backend c v)
      ~bytes:n;
  Req_handle.enqueue_response h resp

(* {2 Lazy request views} *)

type 'a view = {
  v_codec : 'a Codec.t;
  v_backend : Codec.backend;
  v_bytes : bytes;
  v_base : int;
  v_len : int;
  v_lazy : bool;
  v_charge : leaves:int -> bytes:int -> unit;
  mutable v_forced : 'a option;
}

let force v =
  match v.v_forced with
  | Some x -> x
  | None ->
      let x =
        Codec.decode ~backend:v.v_backend v.v_codec v.v_bytes ~off:v.v_base ~len:v.v_len
      in
      v.v_charge
        ~leaves:(Codec.encoded_leaves ~backend:v.v_backend v.v_codec x)
        ~bytes:v.v_len;
      v.v_forced <- Some x;
      x

let view_request ?(charge = true) h c =
  let backend = fst (Req_handle.codec_mode h) in
  let m = Req_handle.get_request h in
  let v =
    {
      v_codec = c;
      v_backend = backend;
      v_bytes = Msgbuf.unsafe_bytes m;
      v_base = Msgbuf.unsafe_offset m;
      v_len = Msgbuf.size m;
      v_lazy = (backend = Codec.Flat && Codec.flat_capable c);
      v_charge =
        (fun ~leaves ~bytes ->
          if charge then Req_handle.charge_codec h ~deser:true ~backend ~leaves ~bytes);
      v_forced = None;
    }
  in
  (* Compact layouts have no per-field addressing: decode (and charge)
     everything up front so accessors are pure projections. *)
  if not v.v_lazy then ignore (force v);
  v

let is_lazy v = v.v_lazy && v.v_forced = None

let view_int v ~leaf ~fallback =
  if is_lazy v then begin
    v.v_charge ~leaves:1 ~bytes:(Codec.leaf_bytes v.v_codec ~leaf);
    Codec.get_leaf_int v.v_codec v.v_bytes ~base:v.v_base ~leaf
  end
  else fallback (force v)

let view_string v ~leaf ~fallback =
  if is_lazy v then begin
    v.v_charge ~leaves:1 ~bytes:(Codec.leaf_bytes v.v_codec ~leaf);
    Codec.get_leaf_string v.v_codec v.v_bytes ~base:v.v_base ~leaf
  end
  else fallback (force v)
