type conn_state = Connect_pending | Connected | Error of string | Destroyed
type role = Client | Server

type req_args = {
  req_type : int;
  req : Msgbuf.t;
  resp : Msgbuf.t;
  on_complete : Msgbuf.t -> unit;
  cont : (unit, Err.t) result -> unit;
}

type client_info = {
  mutable num_tx : int;
  mutable num_rx : int;
  mutable max_tx : int;
  mutable n_req_pkts : int;
  mutable n_resp_pkts : int;
  mutable tx_ts : Sim.Time.t array;
  mutable wheel_refs : int;
  mutable retx_in_wheel : bool;
  mutable retransmits : int;
  mutable consec_retx : int;
}

type server_info = {
  mutable num_rx : int;
  mutable n_req_pkts : int;
  mutable handler_done : bool;
  mutable handler_running : bool;
  mutable req_buf : Msgbuf.t option;
  mutable spare_req_buf : Msgbuf.t option;
  mutable resp_buf : Msgbuf.t option;
  mutable ecn_pending : bool;
}

type sslot = {
  index : int;
  session : session;
  mutable req_num : int;
  mutable busy : bool;
  mutable args : req_args option;
  mutable cli : client_info option;
  mutable srv : server_info option;
  mutable in_txq : bool;
  mutable in_credit_waitq : bool;
  mutable needs_retx : bool;
  mutable rto : Sim.Timer.t option;
  mutable issue_time : Sim.Time.t;
  mutable prealloc_resp : Msgbuf.t option;
}

and session = {
  sn : int;
  role : role;
  token : int;
  remote_host : int;
  remote_rpc_id : int;
  mutable remote_sn : int;
  mutable state : conn_state;
  slots : sslot option array;
  mutable credits : int;
  credit_limit : int;
  backlog : req_args Queue.t;
  credit_waiters : sslot Queue.t;
  mutable cc : Cc.t option;
  mutable next_tx_ts : Sim.Time.t;
  mutable connect_cb : (unit, Err.t) result -> unit;
  mutable retransmits : int;
}

let create ~sn ~role ~token ~remote_host ~remote_rpc_id ~credits ~req_window =
  {
    sn;
    role;
    token;
    remote_host;
    remote_rpc_id;
    remote_sn = -1;
    state = Connect_pending;
    slots = Array.make req_window None;
    credits;
    credit_limit = credits;
    backlog = Queue.create ();
    credit_waiters = Queue.create ();
    cc = None;
    next_tx_ts = Sim.Time.zero;
    connect_cb = (fun _ -> ());
    retransmits = 0;
  }

let slot session i =
  match session.slots.(i) with
  | Some s -> s
  | None ->
      let s =
        {
          index = i;
          session;
          (* First request on slot i carries req_num = i; subsequent ones
             step by the window size so [req_num mod window] recovers the
             slot at the receiver. *)
          req_num = i - Array.length session.slots;
          busy = false;
          args = None;
          cli = None;
          srv = None;
          in_txq = false;
          in_credit_waitq = false;
          needs_retx = false;
          rto = None;
          issue_time = Sim.Time.zero;
          prealloc_resp = None;
        }
      in
      session.slots.(i) <- Some s;
      s

let client_info sslot ~credits =
  match sslot.cli with
  | Some c -> c
  | None ->
      let c =
        {
          num_tx = 0;
          num_rx = 0;
          max_tx = 0;
          n_req_pkts = 0;
          n_resp_pkts = -1;
          tx_ts = Array.make (max 1 credits) Sim.Time.zero;
          wheel_refs = 0;
          retx_in_wheel = false;
          retransmits = 0;
          consec_retx = 0;
        }
      in
      sslot.cli <- Some c;
      c

let server_info sslot =
  match sslot.srv with
  | Some s -> s
  | None ->
      let s =
        {
          num_rx = 0;
          n_req_pkts = 0;
          handler_done = false;
          handler_running = false;
          req_buf = None;
          spare_req_buf = None;
          resp_buf = None;
          ecn_pending = false;
        }
      in
      sslot.srv <- Some s;
      s

let free_slot session ~req_window =
  let rec go i =
    if i >= req_window then None
    else
      match session.slots.(i) with
      | None -> Some (slot session i)
      | Some s when not s.busy -> Some s
      | Some _ -> go (i + 1)
  in
  go 0

let outstanding_packets session =
  Array.fold_left
    (fun acc slot ->
      match slot with
      | Some ({ busy = true; cli = Some c; _ } as s) when s.session.role = Client ->
          acc + (c.num_tx - c.num_rx)
      | _ -> acc)
    0 session.slots
