type Netsim.Packet.body +=
  | Pkt of { dst_rpc : int; hdr : Pkthdr.t; data : bytes; csum : int }

let make ~src_host ~dst_host ~dst_rpc ~wire_overhead ~flow ~hdr ?payload () =
  let data =
    match payload with
    | None -> Bytes.empty
    | Some (src, off, len) -> Bytes.sub src off len
  in
  let size_bytes = Bytes.length data + wire_overhead in
  let csum = Pkthdr.checksum hdr ~data in
  Netsim.Packet.make ~src:src_host ~dst:dst_host ~size_bytes ~flow_hash:flow
    (Pkt { dst_rpc; hdr; data; csum })

let verify pkt =
  (not pkt.Netsim.Packet.corrupted)
  &&
  match pkt.Netsim.Packet.body with
  | Pkt { hdr; data; csum; _ } -> csum = Pkthdr.checksum hdr ~data
  | _ -> true

let corrupt ?(bit = 0) pkt =
  match pkt.Netsim.Packet.body with
  | Pkt { data; _ } when Bytes.length data > 0 ->
      let i = bit / 8 mod Bytes.length data in
      Bytes.set_uint8 data i (Bytes.get_uint8 data i lxor (1 lsl (bit mod 8)))
  | _ ->
      (* Header-only packet (CR/RFR), or a foreign body: the flipped bits
         land in the typed header, which we cannot mangle structurally —
         mark the frame so checksum verification fails. *)
      pkt.Netsim.Packet.corrupted <- true

let flow_hash ~src_host ~dst_host ~sn =
  let h = (src_host * 1_000_003) + (dst_host * 7_919) + (sn * 131) in
  h land max_int
