type Netsim.Packet.body +=
  | Pkt of {
      mutable dst_rpc : int;
      mutable hdr : Pkthdr.t;
      mutable data : bytes;
      mutable off : int;
      mutable len : int;
    }

(* Free-list of recycled packets, linked through [Packet.pool_next] and
   terminated by [Packet.nil]. Each endpoint owns one pool, so in steady
   state the TX path allocates no packet records at all: a recycled record
   (and its [Pkt] body) is rewritten in place. *)
type pool = {
  mutable head : Netsim.Packet.t;
  mutable release : Netsim.Packet.t -> unit;
  mutable outstanding : int;  (* live packets minus recycled ones *)
  mutable recycled : int;
}

let empty_hdr =
  {
    Pkthdr.req_type = 0;
    msg_size = 0;
    dest_session = 0;
    pkt_type = Pkthdr.Cr;
    pkt_num = 0;
    req_num = 0;
    token = 0;
    ecn_echo = false;
  }

let create_pool () =
  let p =
    { head = Netsim.Packet.nil; release = Netsim.Packet.no_release; outstanding = 0; recycled = 0 }
  in
  p.release <-
    (fun pkt ->
      (* Scrub references so a parked packet pins neither the payload
         bytes (somebody's msgbuf) nor the last header. *)
      (match pkt.Netsim.Packet.body with
      | Pkt r ->
          r.data <- Bytes.empty;
          r.off <- 0;
          r.len <- 0;
          r.hdr <- empty_hdr
      | _ -> ());
      p.outstanding <- p.outstanding - 1;
      p.recycled <- p.recycled + 1;
      pkt.Netsim.Packet.pool_next <- p.head;
      p.head <- pkt);
  p

let pool_outstanding p = p.outstanding
let pool_recycled p = p.recycled

let make ?pool ~src_host ~dst_host ~dst_rpc ~wire_overhead ~flow ~hdr ?payload () =
  let data, off, len =
    match payload with None -> (Bytes.empty, 0, 0) | Some (b, o, l) -> (b, o, l)
  in
  let size_bytes = len + wire_overhead in
  match pool with
  | Some p when p.head != Netsim.Packet.nil ->
      let pkt = p.head in
      p.head <- pkt.Netsim.Packet.pool_next;
      pkt.Netsim.Packet.pool_next <- Netsim.Packet.nil;
      p.outstanding <- p.outstanding + 1;
      (match pkt.Netsim.Packet.body with
      | Pkt r ->
          r.dst_rpc <- dst_rpc;
          r.hdr <- hdr;
          r.data <- data;
          r.off <- off;
          r.len <- len
      | _ -> assert false);
      Netsim.Packet.reinit pkt ~src:src_host ~dst:dst_host ~size_bytes ~flow_hash:flow;
      pkt
  | _ ->
      let pkt =
        Netsim.Packet.make ~src:src_host ~dst:dst_host ~size_bytes ~flow_hash:flow
          (Pkt { dst_rpc; hdr; data; off; len })
      in
      (match pool with
      | Some p ->
          p.outstanding <- p.outstanding + 1;
          pkt.Netsim.Packet.release <- p.release
      | None -> ());
      pkt

let verify pkt = not pkt.Netsim.Packet.corrupted

let corrupt ?bit pkt =
  (* The payload is a zero-copy slice of the sender's live msgbuf, so bit
     flips cannot be applied to the backing bytes without corrupting the
     sender's memory. Modeled instead as a per-frame error flag, which is
     what the wire checksum reduces to in a simulator that models error
     detection rather than adversarial collisions. *)
  ignore bit;
  pkt.Netsim.Packet.corrupted <- true

let flow_hash ~src_host ~dst_host ~sn =
  let h = (src_host * 1_000_003) + (dst_host * 7_919) + (sn * 131) in
  h land max_int
