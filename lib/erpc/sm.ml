type msg =
  | Connect_req of {
      client_host : int;
      client_rpc : int;
      client_sn : int;
      token : int;
      credits : int;
    }
  | Connect_resp of { client_sn : int; result : (int, string) result }
  | Disconnect of { server_sn : int; client_sn : int }
  | Disconnect_ack of { client_sn : int }

let pp fmt = function
  | Connect_req { client_host; client_rpc; client_sn; token; credits } ->
      Format.fprintf fmt "ConnectReq(h%d/r%d sn=%d tok=%d credits=%d)" client_host client_rpc
        client_sn token credits
  | Connect_resp { client_sn; result = Ok sn } ->
      Format.fprintf fmt "ConnectResp(csn=%d ssn=%d)" client_sn sn
  | Connect_resp { client_sn; result = Error e } ->
      Format.fprintf fmt "ConnectResp(csn=%d error=%s)" client_sn e
  | Disconnect { server_sn; client_sn } ->
      Format.fprintf fmt "Disconnect(ssn=%d csn=%d)" server_sn client_sn
  | Disconnect_ack { client_sn } -> Format.fprintf fmt "DisconnectAck(csn=%d)" client_sn
