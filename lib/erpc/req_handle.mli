(** Server-side handle passed to request handlers (paper §3.1).

    A handler reads the request, obtains a response buffer with
    [init_response] (eRPC transparently uses the slot's preallocated
    MTU-sized msgbuf when the response fits, §4.3), models its compute time
    with [charge], and calls [enqueue_response] — immediately, or later for
    nested RPCs. The closures are installed by the owning {!Rpc} when the
    handle is created. *)

type t = {
  req_type : int;
  req : Msgbuf.t;
  mutable resp : Msgbuf.t option;
  mutable responded : bool;
  mutable charge_fn : int -> unit;
  mutable init_resp_fn : int -> Msgbuf.t;
  mutable enqueue_fn : t -> Msgbuf.t -> unit;
  mutable codec_mode_fn : unit -> Codec.backend * bool;
  mutable codec_charge_fn : deser:bool -> backend:Codec.backend -> leaves:int -> bytes:int -> unit;
}

val get_request : t -> Msgbuf.t

(** Model [ns] of handler CPU work on the thread running the handler. *)
val charge : t -> int -> unit

(** The owning endpoint's configured [(codec_backend, codec_offload)] —
    how {!Typed} picks a wire format server-side. *)
val codec_mode : t -> Codec.backend * bool

(** Charge one encode/decode to the thread running the handler, priced by
    the endpoint's cost model (and its offload toggle). Used by {!Typed};
    handlers normally don't call it directly. *)
val charge_codec :
  t -> deser:bool -> backend:Codec.backend -> leaves:int -> bytes:int -> unit

(** Obtain a response buffer of [size] bytes. *)
val init_response : t -> size:int -> Msgbuf.t

(** Complete the RPC. May be called at most once, from a dispatch-thread
    context (worker handlers route through the background queue
    automatically). *)
val enqueue_response : t -> Msgbuf.t -> unit

(** Internal constructor used by {!Rpc}. *)
val make : req_type:int -> req:Msgbuf.t -> t
