type handler_mode = Dispatch | Worker
type handler = Req_handle.t -> unit

type worker = {
  cpu : Sim.Cpu.t;
  jobs : (Sim.Cpu.t -> unit) Queue.t;
  mutable running : bool;
  mutable inflight : int;  (* submitted jobs whose charged work has not finished *)
}

type t = {
  fabric : Fabric.t;
  host : int;
  handlers : (int, handler_mode * handler) Hashtbl.t;
  workers : worker array;
  rx_routes : (int, Netsim.Packet.t -> unit) Hashtbl.t;
  mutable dead : bool;
}

let create fabric ~host ?(num_workers = 1) () =
  let engine = Fabric.engine fabric in
  let t =
    {
      fabric;
      host;
      handlers = Hashtbl.create 16;
      workers =
        Array.init num_workers (fun i ->
            {
              cpu = Sim.Cpu.create engine ~name:(Printf.sprintf "h%d-worker%d" host i);
              jobs = Queue.create ();
              running = false;
              inflight = 0;
            });
      rx_routes = Hashtbl.create 8;
      dead = false;
    }
  in
  Netsim.Network.attach (Fabric.net fabric) ~host ~rx:(fun pkt ->
      if t.dead then Netsim.Packet.free pkt
      else
        match pkt.Netsim.Packet.body with
        | Wire.Pkt { dst_rpc; _ } -> (
            match Hashtbl.find_opt t.rx_routes dst_rpc with
            | Some rx -> rx pkt
            | None -> Netsim.Packet.free pkt)
        | _ -> Netsim.Packet.free pkt);
  Fabric.on_host_killed fabric (fun h -> if h = host then t.dead <- true);
  Fabric.on_host_restart fabric (fun h -> if h = host then t.dead <- false);
  t

let fabric t = t.fabric
let host t = t.host
let dead t = t.dead

let register_handler t ~req_type ~mode handler =
  if Hashtbl.mem t.handlers req_type then
    invalid_arg (Printf.sprintf "Nexus.register_handler: req_type %d already registered" req_type);
  Hashtbl.replace t.handlers req_type (mode, handler)

let handler t req_type = Hashtbl.find_opt t.handlers req_type

let register_rx t ~rpc_id ~rx =
  if Hashtbl.mem t.rx_routes rpc_id then
    invalid_arg (Printf.sprintf "Nexus.register_rx: Rpc id %d already exists on host %d" rpc_id t.host);
  Hashtbl.replace t.rx_routes rpc_id rx

let rec drain_worker t w =
  match Queue.take_opt w.jobs with
  | None -> w.running <- false
  | Some job ->
      let engine = Fabric.engine t.fabric in
      let start = Sim.Cpu.start_slice w.cpu in
      Sim.Engine.schedule engine start (fun () ->
          if not t.dead then job w.cpu;
          (* The next job may begin once this one's charged work ends. *)
          Sim.Engine.schedule engine (Sim.Cpu.next_free w.cpu) (fun () ->
              w.inflight <- w.inflight - 1;
              drain_worker t w))

let submit_worker t job =
  if Array.length t.workers = 0 then invalid_arg "Nexus.submit_worker: no worker threads";
  let best = ref t.workers.(0) in
  Array.iter
    (fun w ->
      let better =
        w.inflight < !best.inflight
        || (w.inflight = !best.inflight && Sim.Cpu.next_free w.cpu < Sim.Cpu.next_free !best.cpu)
      in
      if better then best := w)
    t.workers;
  let w = !best in
  w.inflight <- w.inflight + 1;
  Queue.add job w.jobs;
  if not w.running then begin
    w.running <- true;
    drain_worker t w
  end

let num_workers t = Array.length t.workers
let worker_cpu t i = t.workers.(i).cpu
