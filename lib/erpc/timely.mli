(** Timely: RTT-gradient congestion control (Mittal et al., SIGCOMM '15),
    as adapted by eRPC (§5.2): rate-based, per-session, entirely at the
    client.

    A session whose computed rate sits at the link's maximum is
    {e uncongested}; eRPC's common-case optimizations (Timely bypass, rate
    limiter bypass) key off this predicate. *)

type t

(** [phase] staggers the first rate update among sessions. *)
val create : ?phase:int -> Config.cc -> link_gbps:float -> t

(** Current sending rate in bits per second. *)
val rate_bps : t -> float

(** Rate is pinned at the link rate. *)
val uncongested : t -> bool

(** Feed one acknowledgement sample. The rate computation uses only
    [sample_rtt_ns]; [marked] (ECN) and [now_ns] are recorded so the
    controller receives the same complete signal as {!Dcqcn} (and a future
    algorithm can use them without re-plumbing the datapath). *)
val update : ?marked:bool -> ?now_ns:Sim.Time.t -> t -> sample_rtt_ns:int -> unit

(** ECN-marked acknowledgements seen (signal recorded, not acted on). *)
val ecn_marks : t -> int

(** Time (ns) to serialize [bytes] at the current rate. *)
val pacing_delay_ns : t -> bytes:int -> int

(** Number of [update] calls, for the factor-analysis accounting. *)
val updates : t -> int

(** Force the rate (tests/ablation). *)
val set_rate_bps : t -> float -> unit
