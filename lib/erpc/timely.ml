type t = {
  cc : Config.cc;
  max_rate_bps : float;
  mutable rate_bps : float;
  mutable prev_rtt : float;
  mutable avg_rtt_diff : float;
  mutable neg_gradient_count : int;
  mutable updates : int;
  mutable samples_since_update : int;
  mutable ecn_marks : int;
  mutable last_sample_at : Sim.Time.t;
}

let create ?(phase = 0) cc ~link_gbps =
  let max_rate = link_gbps *. 1e9 in
  {
    cc;
    max_rate_bps = max_rate;
    rate_bps = max_rate;
    prev_rtt = float_of_int cc.min_rtt_ns;
    avg_rtt_diff = 0.;
    neg_gradient_count = 0;
    updates = 0;
    (* Stagger sessions' update cadence so the fleet does not apply
       multiplicative decrease in lockstep. *)
    samples_since_update = phase mod max 1 cc.samples_per_update;
    ecn_marks = 0;
    last_sample_at = Sim.Time.zero;
  }

let rate_bps t = t.rate_bps
let uncongested t = t.rate_bps >= t.max_rate_bps
let updates t = t.updates

let clamp t r = Float.min t.max_rate_bps (Float.max t.cc.min_rate_bps r)

(* Timely's rate computation uses only the RTT, but the full
   acknowledgement signal is recorded so the controller (and anything
   layered on it) sees the same inputs DCQCN does. *)
let rec update ?(marked = false) ?(now_ns = Sim.Time.zero) t ~sample_rtt_ns =
  if marked then t.ecn_marks <- t.ecn_marks + 1;
  if now_ns > t.last_sample_at then t.last_sample_at <- now_ns;
  t.samples_since_update <- t.samples_since_update + 1;
  if t.samples_since_update >= t.cc.samples_per_update then begin
    t.samples_since_update <- 0;
    run_update t ~sample_rtt_ns
  end

and run_update t ~sample_rtt_ns =
  t.updates <- t.updates + 1;
  let sample = float_of_int sample_rtt_ns in
  let rtt_diff = sample -. t.prev_rtt in
  t.prev_rtt <- sample;
  if rtt_diff <= 0. then t.neg_gradient_count <- t.neg_gradient_count + 1
  else t.neg_gradient_count <- 0;
  t.avg_rtt_diff <-
    ((1. -. t.cc.ewma_alpha) *. t.avg_rtt_diff) +. (t.cc.ewma_alpha *. rtt_diff);
  let normalized_gradient = t.avg_rtt_diff /. float_of_int t.cc.min_rtt_ns in
  let new_rate =
    if sample_rtt_ns < t.cc.t_low_ns then t.rate_bps +. t.cc.add_rate_bps
    else if sample_rtt_ns > t.cc.t_high_ns then
      t.rate_bps *. (1. -. (t.cc.beta *. (1. -. (float_of_int t.cc.t_high_ns /. sample))))
    else if normalized_gradient <= 0. then begin
      (* Hyperactive increase after [hai_thresh] consecutive decreases in
         RTT: recover bandwidth quickly once the queue drains. *)
      let n = if t.neg_gradient_count >= t.cc.hai_thresh then 5. else 1. in
      t.rate_bps +. (n *. t.cc.add_rate_bps)
    end
    else
      (* One update cuts at most half, as in eRPC's Timely implementation. *)
      t.rate_bps *. Float.max 0.5 (1. -. (t.cc.beta *. normalized_gradient))
  in
  t.rate_bps <- clamp t new_rate

let pacing_delay_ns t ~bytes =
  int_of_float (ceil (float_of_int (bytes * 8) /. t.rate_bps *. 1e9))

let set_rate_bps t r = t.rate_bps <- clamp t r
let ecn_marks t = t.ecn_marks
