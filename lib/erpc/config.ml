type opts = {
  batched_timestamps : bool;
  timely_bypass : bool;
  rate_limiter_bypass : bool;
  multi_packet_rq : bool;
  preallocated_responses : bool;
  zero_copy_rx : bool;
  congestion_control : bool;
  cumulative_crs : bool;
}

let all_opts_on =
  {
    batched_timestamps = true;
    timely_bypass = true;
    rate_limiter_bypass = true;
    multi_packet_rq = true;
    preallocated_responses = true;
    zero_copy_rx = true;
    congestion_control = true;
    cumulative_crs = false;
  }

type transport_kind = Raw_eth | Rdma_rc

type cc_algo = Timely | Dcqcn

type cc = {
  algo : cc_algo;
  t_low_ns : int;
  t_high_ns : int;
  min_rtt_ns : int;
  ewma_alpha : float;
  beta : float;
  add_rate_bps : float;
  min_rate_bps : float;
  hai_thresh : int;
  samples_per_update : int;
  dcqcn_g : float;
  dcqcn_rai_bps : float;
  dcqcn_alpha_timer_ns : int;
  dcqcn_increase_timer_ns : int;
  dcqcn_cnp_interval_ns : int;
  dcqcn_fast_recovery : int;
}

let default_cc ~min_rtt_ns =
  {
    algo = Timely;
    t_low_ns = 50_000;
    t_high_ns = 1_000_000;
    min_rtt_ns;
    ewma_alpha = 0.46;
    beta = 0.26;
    add_rate_bps = 50e6;
    min_rate_bps = 30e6;
    hai_thresh = 5;
    samples_per_update = 8;
    (* DCQCN parameters from Zhu et al. (SIGCOMM '15). *)
    dcqcn_g = 1. /. 16.;
    dcqcn_rai_bps = 100e6;
    dcqcn_alpha_timer_ns = 55_000;
    dcqcn_increase_timer_ns = 55_000;
    dcqcn_cnp_interval_ns = 50_000;
    dcqcn_fast_recovery = 5;
  }

type t = {
  transport : transport_kind;
  mtu : int;
  max_msg_size : int;
  wire_overhead : int;
  session_credits : int;
  req_window : int;
  rx_batch : int;
  tx_batch : int;
  rto_ns : int;
  max_retransmits : int;
  cr_stride : int;
  wheel_slot_ns : int;
  wheel_num_slots : int;
  sm_latency_ns : int;
  sm_failure_timeout_ns : int;
  opts : opts;
  cc : cc;
  codec_backend : Codec.backend;
  codec_offload : bool;
  shm_enabled : bool;
  shm_mode : Shm.mode;
  shm_slots : int;
  shm_hop_ns : int;
}

let of_cluster ?credits (cluster : Transport.Cluster.t) =
  let credits =
    match credits with Some c -> c | None -> Transport.Cluster.default_credits cluster
  in
  (* Base RTT estimate: small-packet round trip between two hosts. Timely
     only needs the order of magnitude to normalize gradients. *)
  let min_rtt_ns =
    (* Base network RTT between hosts under different ToRs (the worst-case
       uncongested path): NIC crossings, cables, and up to three switch
       hops each way. ~6 us on the CX4 profile, matching the paper. *)
    let hop =
      cluster.nic_config.tx_latency_ns + cluster.nic_config.rx_latency_ns
      + (cluster.nic_config.rx_jitter_ns / 2)
      + (4 * cluster.net_config.cable_ns)
      + (2 * cluster.net_config.switch_latency_ns)
    in
    2 * hop
  in
  {
    transport = Raw_eth;
    mtu = cluster.mtu;
    max_msg_size = 8 * 1024 * 1024;
    wire_overhead = cluster.wire_overhead;
    session_credits = credits;
    req_window = 8;
    rx_batch = 32;
    tx_batch = 32;
    rto_ns = 5_000_000;
    max_retransmits = 8;
    cr_stride = 4;
    wheel_slot_ns = 1_000;
    wheel_num_slots = 16_384;
    sm_latency_ns = 50_000;
    sm_failure_timeout_ns = 5_000_000;
    opts = all_opts_on;
    cc = default_cc ~min_rtt_ns;
    codec_backend = Codec.Compact;
    codec_offload = false;
    shm_enabled = false;
    shm_mode = Shm.Auto;
    shm_slots = 512;
    shm_hop_ns = 150;
  }
