(** An Rpc endpoint: one user thread's RPC interface (paper §3.1).

    Owns a dispatch-thread CPU timeline, a pluggable transport
    ({!Transport.Iface}), and the Timely/Carousel congestion-control
    machinery; the client-driven wire protocol with go-back-N loss
    recovery lives in {!Proto}, written against the transport signature.
    The "event loop" the paper's user threads run is driven by the
    simulation: any arriving work wakes the loop, which then runs
    activations back-to-back (charging modeled CPU) until idle —
    equivalent to busy polling, without simulating empty polls.

    Guarantees reproduced from the paper:
    - RPCs execute at most once (per-slot request numbers; duplicate and
      reordered packets are dropped);
    - msgbuf ownership: a request/response msgbuf returns to the
      application exactly when its continuation runs, and never while a
      reference might sit in the NIC DMA queue (TX flush on retransmission)
      or the rate limiter (responses dropped while a retransmitted packet
      is wheeled, Appendix C);
    - sessions are limited so that per-session credits can never overflow
      the receive queue: [sessions * credits <= rq_size]. *)

type t

val create : Nexus.t -> rpc_id:int -> t

val id : t -> int
val host : t -> int
val nexus : t -> Nexus.t
val cpu : t -> Sim.Cpu.t
val config : t -> Config.t

(** The endpoint's datapath, selected by [Config.transport] (wrapped in
    the {!Shm} intra-host mux when [Config.shm_enabled]). *)
val transport : t -> Transport.Iface.t

(** The endpoint's shared-memory ring state when [Config.shm_enabled]
    ([None] otherwise); exposes serialize/share/guard-fault counters. *)
val shm_endpoint : t -> Shm.endpoint option

(** {2 Sessions} *)

(** Start connecting to a remote Rpc. Raises if the session-credit budget
    [rq_size / credits] is exhausted (paper §4.3.1). Requests may be
    enqueued immediately; they are held until the handshake completes. *)
val create_session :
  t ->
  remote_host:int ->
  remote_rpc_id:int ->
  ?on_connect:((unit, Err.t) result -> unit) ->
  unit ->
  Session.session

val num_sessions : t -> int

(** Tear down a connected client session (frees its credit budget on both
    endpoints). Raises if any request is still outstanding, or if the
    connection handshake has not completed yet. The session reaches
    [Destroyed] once the server acknowledges. *)
val destroy_session : t -> Session.session -> unit

(** {2 Client API} *)

(** Asynchronously issue an RPC on a session. [req]'s current size is the
    request size; [resp] must be able to hold the response. Both msgbufs
    pass to eRPC ownership until [cont] is invoked. *)
val enqueue_request :
  t ->
  Session.session ->
  req_type:int ->
  req:Msgbuf.t ->
  resp:Msgbuf.t ->
  cont:((unit, Err.t) result -> unit) ->
  unit

(** As [enqueue_request], with a completion hook (used by {!Typed} to
    charge response deserialization) that runs on success just before
    [cont], with the filled response, inside the request's traced
    lifetime. *)
val enqueue_request_hooked :
  t ->
  Session.session ->
  req_type:int ->
  req:Msgbuf.t ->
  resp:Msgbuf.t ->
  on_complete:(Msgbuf.t -> unit) ->
  cont:((unit, Err.t) result -> unit) ->
  unit

(** The endpoint's configured [(codec_backend, codec_offload)]. *)
val codec_mode : t -> Codec.backend * bool

(** Charge one typed encode ([deser:false]) or decode ([deser:true]) of a
    message with [leaves] fields and [bytes] wire bytes to the dispatch
    CPU, priced by the endpoint's cost model and offload toggle, emitting
    a "codec" trace span over the charged interval. [backend] defaults to
    the endpoint's configured backend. Used by {!Typed}. *)
val charge_codec :
  ?backend:Codec.backend -> t -> deser:bool -> leaves:int -> bytes:int -> unit

(** {2 Statistics} *)

(** The endpoint's counters (shared with the protocol core; live — reads
    always see the current values). *)
val stats : t -> Rpc_stats.t

(** Rate updates performed across all session controllers (both CC
    algorithms), for the factor-analysis accounting. *)
val cc_updates : t -> int

(** Number of currently armed RTO timers across all sessions. Zero once
    every request has completed or failed — anything else is a timer
    leak. *)
val armed_rto_count : t -> int

(** Install a probe invoked with every per-packet RTT sample (ns) measured
    at this client — the paper's proxy for switch queue length (§6.5). *)
val set_rtt_probe : t -> (int -> unit) -> unit
