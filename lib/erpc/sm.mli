(** Session-management messages (paper Appendix B).

    eRPC runs session creation/teardown and failure detection over an
    out-of-band sockets channel handled by a per-process management thread;
    we model that channel as direct engine events with a configurable
    latency, far off the datapath. *)

type msg =
  | Connect_req of {
      client_host : int;
      client_rpc : int;
      client_sn : int;
      token : int;  (** fabric-unique session token chosen by the client *)
      credits : int;
    }
  | Connect_resp of { client_sn : int; result : (int, string) result }
      (** [result] carries the server-side session number on success *)
  | Disconnect of { server_sn : int; client_sn : int }
  | Disconnect_ack of { client_sn : int }

val pp : Format.formatter -> msg -> unit
