(** Modeled CPU costs of eRPC's datapath, in nanoseconds.

    The simulation charges these to the owning thread's {!Sim.Cpu}
    timeline; a dispatch thread therefore saturates at the reciprocal of
    its per-RPC cost, which is what makes single-core message-rate
    experiments (Fig 4, Table 3) meaningful. Each common-case optimization
    in {!Config.opts} adds or removes specific terms, so the factor
    analysis is emergent rather than hard-coded.

    Values are calibrated (see bench/table3) so the CX4 baseline lands at
    the paper's 4.96 Mrps per thread; other clusters scale all costs by
    their [cpu_scale]. *)

type t = {
  scale : float;  (** cluster CPU-speed multiplier *)
  loop_overhead : int;  (** per event-loop activation *)
  rx_pkt : int;  (** poll + header parse + sslot bookkeeping per packet *)
  tx_data_pkt : int;  (** build + post one data packet descriptor *)
  tx_ctrl_pkt : int;  (** build + post a 16 B CR/RFR *)
  rdtsc : int;  (** one timestamp read (8 ns on the paper's hardware) *)
  timely_update : int;  (** rate computation from one RTT sample *)
  wheel_insert : int;  (** rate-limiter enqueue *)
  wheel_poll_pkt : int;  (** rate-limiter dequeue + transmit handoff *)
  dyn_alloc : int;  (** dynamic msgbuf allocation *)
  memcpy_fixed : int;
  memcpy_per_256b : int;  (** copy cost per 256 B chunk beyond the first *)
  handler_dispatch : int;  (** invoke a dispatch-mode request handler *)
  continuation : int;  (** invoke a client continuation *)
  worker_handoff : int;  (** one direction of dispatch<->worker queueing *)
  enqueue_request : int;  (** client-side request admission *)
  credit_logic : int;  (** per-packet credit/flow-control bookkeeping *)
  cc_check : int;
      (** per-packet congestion-control bookkeeping that remains even when
          the bypass optimizations hit (uncongested/bypass predicates);
          disabling CC entirely removes it — the paper's 9% total CC
          overhead (§6.2) *)
  ser_field : int;  (** compact encode, per primitive field *)
  deser_field : int;  (** compact decode, per primitive field (validation) *)
  flat_ser_field : int;  (** flat fixed-offset store, per field *)
  flat_deser_field : int;  (** flat fixed-offset load, per field *)
  codec_offload_post : int;
      (** NIC-offloaded codec: descriptor build + doorbell, per message *)
  codec_offload_per_256b : int;
      (** NIC-offloaded codec: DMA scatter/gather setup per 256 B chunk
          beyond the first *)
  shm_ring_post : int;  (** claim/publish or re-arm one shm ring slot *)
  shm_seal : int;  (** seal a shared buffer on send (content guard) *)
  shm_unseal : int;  (** unseal a shared buffer on receive *)
  shm_share_desc : int;  (** build one pointer-passing descriptor *)
  shm_ownership_check : int;
      (** receiver-side ownership-transfer validation per shared buffer *)
}

val default : t

(** Apply the cluster scale to a cost. *)
val scaled : t -> int -> int

(** Cost of copying [bytes] bytes. *)
val memcpy_cost : t -> int -> int

(** Profile for a cluster: [default] with the profile's [cpu_scale]. *)
val for_cluster : Transport.Cluster.t -> t

(** Full scaled cost of one encode ([deser:false]) or decode
    ([deser:true]) of a message with [leaves] primitive fields and [bytes]
    total wire bytes. With [offload:true] the CPU pays only the modeled
    NIC-offload descriptor/DMA cost regardless of backend. *)
val codec_cost :
  t -> deser:bool -> backend:Codec.backend -> offload:bool -> leaves:int -> bytes:int -> int

(** Pre-scaled shared-memory ring charges for {!Shm.create}: the
    serialize path composes the slot publish with {!memcpy_cost}; the
    share path pays flat descriptor + seal/unseal/ownership-check terms.
    The serialize-vs-share crossover payload size is emergent from these
    values (~1 KB at defaults). *)
val shm_costs : t -> Shm.costs
