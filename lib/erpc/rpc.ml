open Session

type wheel_entry = {
  we_slot : Session.sslot;
  we_req_num : int;
  we_item : int;  (* TX item index, to re-stamp the RTT clock at actual TX *)
  we_pkt : Netsim.Packet.t;
}

type t = {
  nexus_ : Nexus.t;
  rpc_id : int;
  host_ : int;
  engine : Sim.Engine.t;
  cfg : Config.t;
  cost : Cost_model.t;
  cpu_ : Sim.Cpu.t;
  transport_ : Transport.Iface.t;
  shm_ : Shm.endpoint option;  (* ring state when [cfg.shm_enabled] *)
  proto : Proto.t;
  bgq : (unit -> unit) Queue.t;
  mutable wheel : wheel_entry Wheel.t option;
  mutable loop_scheduled : bool;
  mutable batch_ts : Sim.Time.t;
  stats_ : Rpc_stats.t;
  mutable rtt_probe : (int -> unit) option;
  (* Preallocated hot-path closures and the deferred-TX FIFO, so the
     steady-state loop schedules no fresh closures per packet. *)
  mutable activate_ev : unit -> unit;
  mutable wake_ev : unit -> unit;
  mutable rx_each : Netsim.Packet.t -> unit;
  tx_deferred : Netsim.Packet.t Sim.Ring.t;
  mutable tx_deferred_ev : unit -> unit;
  trace : Obs.Trace.t;
  pid : int;
  tid : int;  (* this endpoint's thread track *)
}

let id t = t.rpc_id
let host t = t.host_
let nexus t = t.nexus_
let cpu t = t.cpu_
let config t = t.cfg
let transport t = t.transport_
let shm_endpoint t = t.shm_
let stats t = t.stats_
let cc_updates t = Proto.cc_updates t.proto
let num_sessions t = Proto.n_sessions t.proto
let armed_rto_count t = Proto.armed_rto_count t.proto

(* CPU cost charging, scaled to the cluster's CPU speed. *)
let ch t ns = ignore (Sim.Cpu.charge t.cpu_ (Cost_model.scaled t.cost ns))

let dead t = Nexus.dead t.nexus_

(* {2 Typed-codec charging} *)

let codec_mode t = (t.cfg.codec_backend, t.cfg.codec_offload)

(* Charge one typed encode/decode to [cpu], priced by the endpoint's cost
   model and its offload toggle. [traced]: emit a "codec" span over the
   charged interval (dispatch timeline only — worker CPUs have no trace
   track). *)
let charge_codec_cpu t cpu ~traced ~deser ~backend ~leaves ~bytes =
  let offload = t.cfg.codec_offload in
  let cost = Cost_model.codec_cost t.cost ~deser ~backend ~offload ~leaves ~bytes in
  if traced && Obs.Trace.enabled t.trace then begin
    let ts = max (Sim.Engine.now t.engine) (Sim.Cpu.next_free cpu) in
    ignore (Sim.Cpu.charge cpu cost);
    Obs.Trace.complete t.trace ~ts
      ~dur:(max 0 (Sim.Time.sub (Sim.Cpu.next_free cpu) ts))
      ~cat:"codec"
      ~name:(if deser then "deser" else "ser")
      ~pid:t.pid ~tid:t.tid
      [
        ("leaves", Obs.Trace.I leaves);
        ("bytes", Obs.Trace.I bytes);
        ("offload", Obs.Trace.I (if offload then 1 else 0));
      ]
  end
  else ignore (Sim.Cpu.charge cpu cost)

let charge_codec ?backend t ~deser ~leaves ~bytes =
  let backend = match backend with Some b -> b | None -> t.cfg.codec_backend in
  charge_codec_cpu t t.cpu_ ~traced:true ~deser ~backend ~leaves ~bytes

(* {2 Event loop scheduling} *)

let rec schedule_activation t =
  if not t.loop_scheduled then begin
    t.loop_scheduled <- true;
    let at = Sim.Cpu.start_slice t.cpu_ in
    Sim.Engine.schedule t.engine at t.activate_ev
  end

and wake t = if not (dead t) then schedule_activation t

(* One event-loop activation: drain pending work, charging modeled CPU.
   Mirrors eRPC's run_event_loop_once: retransmissions, RX burst,
   background responses, rate-limiter wheel, TX burst. *)
and activate t =
  t.loop_scheduled <- false;
  if not (dead t) then begin
    let act_start = Sim.Engine.now t.engine in
    t.batch_ts <- act_start;
    ch t t.cost.loop_overhead;
    if t.cfg.opts.congestion_control && t.cfg.opts.batched_timestamps then
      ch t (2 * t.cost.rdtsc) (* one timestamp per RX batch, one per TX batch *);
    (* Retransmissions queued by RTO timers. *)
    Proto.drain_retx t.proto;
    (* RX burst: callback iteration straight off the ring, no list. *)
    let n_rx = Transport.Iface.rx_burst t.transport_ ~max:t.cfg.rx_batch t.rx_each in
    if n_rx > 0 then ch t (Transport.Iface.replenish_rx t.transport_ n_rx);
    (* Background-thread completions (worker handler responses, failure
       cleanup). *)
    while not (Queue.is_empty t.bgq) do
      (Queue.take t.bgq) ()
    done;
    (* Rate limiter. *)
    (match t.wheel with
    | Some wheel when Wheel.pending wheel > 0 ->
        ignore
          (Wheel.poll wheel ~now:(Sim.Engine.now t.engine) (fun entry -> wheel_fire t entry))
    | _ -> ());
    (* TX burst. *)
    Proto.run_tx_burst t.proto;
    (* Re-arm if work remains. *)
    if
      Transport.Iface.rx_ring_depth t.transport_ > 0
      || Proto.has_pending_tx t.proto
      || not (Queue.is_empty t.bgq)
    then schedule_activation t;
    if Obs.Trace.enabled t.trace then
      (* One span per event-loop activation, spanning the CPU time this
         activation charged to the dispatch timeline. *)
      Obs.Trace.complete t.trace ~ts:act_start
        ~dur:(max 0 (Sim.Time.sub (Sim.Cpu.next_free t.cpu_) act_start))
        ~cat:"rpc" ~name:"activate" ~pid:t.pid ~tid:t.tid
        [ ("rx", Obs.Trace.I n_rx) ]
  end

(* {2 Timestamps and congestion control} *)

and now_ts t =
  if not t.cfg.opts.congestion_control then t.batch_ts
  else if t.cfg.opts.batched_timestamps then t.batch_ts
  else begin
    ch t t.cost.rdtsc;
    Sim.Engine.now t.engine
  end

and cc_update t sess ~sample_rtt_ns ~marked =
  if t.cfg.opts.congestion_control then
    match sess.cc with
    | None -> ()
    | Some controller ->
        if
          t.cfg.opts.timely_bypass
          && Cc.bypassable controller ~rtt_ns:sample_rtt_ns ~marked
               ~t_low_ns:t.cfg.cc.t_low_ns
        then () (* bypass: uncongested session with no congestion signal *)
        else begin
          ch t t.cost.timely_update;
          Cc.on_sample controller ~rtt_ns:sample_rtt_ns ~marked
            ~now_ns:(Sim.Engine.now t.engine);
          if Obs.Trace.enabled t.trace then
            Obs.Trace.counter t.trace ~ts:(Sim.Engine.now t.engine) ~cat:"cc"
              ~name:(Printf.sprintf "cc_rate_sn%d" sess.sn) ~pid:t.pid
              [ ("gbps", Obs.Trace.F (Cc.rate_bps controller /. 1e9)) ]
        end

(* Post a packet to the transport at the time the dispatch thread's charged
   work completes — the packet leaves the host when the CPU has actually
   built it. *)
and post_pkt t pkt =
  t.stats_.Rpc_stats.tx_pkts <- t.stats_.Rpc_stats.tx_pkts + 1;
  let at = Sim.Cpu.next_free t.cpu_ in
  if at <= Sim.Engine.now t.engine then Transport.Iface.tx_burst t.transport_ pkt
  else begin
    (* [next_free] is nondecreasing across calls, so deferred posts fire
       in FIFO order and a preallocated event can pop from the ring. *)
    Sim.Ring.push t.tx_deferred pkt;
    Sim.Engine.schedule t.engine at t.tx_deferred_ev
  end

(* Client-side transmission honoring the Carousel rate limiter. *)
and transmit_cc t slot pkt ~wire_bytes ~tx_item ~is_retx =
  let sess = slot.session in
  if not t.cfg.opts.congestion_control then post_pkt t pkt
  else
    match sess.cc with
    | None -> post_pkt t pkt
    | Some controller ->
        ch t t.cost.cc_check;
        if t.cfg.opts.rate_limiter_bypass && Cc.uncongested controller then post_pkt t pkt
        else begin
          let now = Sim.Engine.now t.engine in
          let ts = max now sess.next_tx_ts in
          sess.next_tx_ts <-
            Sim.Time.add ts (Cc.pacing_delay_ns controller ~bytes:wire_bytes);
          ch t t.cost.wheel_insert;
          t.stats_.Rpc_stats.wheel_inserts <- t.stats_.Rpc_stats.wheel_inserts + 1;
          let wheel =
            match t.wheel with
            | Some w -> w
            | None ->
                let w = Wheel.create ~slot_ns:t.cfg.wheel_slot_ns ~num_slots:t.cfg.wheel_num_slots in
                t.wheel <- Some w;
                w
          in
          Wheel.insert wheel ~now ~at:ts
            { we_slot = slot; we_req_num = slot.req_num; we_item = tx_item; we_pkt = pkt };
          if Obs.Trace.enabled t.trace then
            Obs.Trace.instant t.trace ~ts:now ~cat:"wheel" ~name:"insert"
              ~pid:t.pid ~tid:t.tid
              [
                ("id", Obs.Trace.I pkt.Netsim.Packet.trace_id);
                ("at", Obs.Trace.I ts);
                ("depth", Obs.Trace.I (Wheel.pending wheel));
              ];
          (match slot.cli with
          | Some c ->
              c.wheel_refs <- c.wheel_refs + 1;
              (* A retransmitted copy is now queued: responses must be
                 dropped until the wheel holds no reference to this
                 request's msgbuf (Appendix C). *)
              if is_retx then c.retx_in_wheel <- true
          | None -> ());
          Sim.Engine.schedule t.engine ts t.wake_ev
        end

and wheel_fire t entry =
  ch t t.cost.wheel_poll_pkt;
  if Obs.Trace.enabled t.trace then
    Obs.Trace.instant t.trace ~ts:(Sim.Engine.now t.engine) ~cat:"wheel"
      ~name:"fire" ~pid:t.pid ~tid:t.tid
      [ ("id", Obs.Trace.I entry.we_pkt.Netsim.Packet.trace_id) ];
  let slot = entry.we_slot in
  (* The slot's wheel occupancy drains regardless of whether the entry is
     still current; only current entries are transmitted. *)
  (match slot.cli with
  | Some c ->
      c.wheel_refs <- max 0 (c.wheel_refs - 1);
      if c.wheel_refs = 0 then c.retx_in_wheel <- false
  | None -> ());
  if entry.we_req_num = slot.req_num then begin
    (match slot.cli with
    | Some c ->
        (* RTT samples must measure the network, not the pacing delay the
           rate limiter itself imposed: re-stamp at actual transmission. *)
        c.tx_ts.(entry.we_item mod Array.length c.tx_ts) <- Sim.Engine.now t.engine
    | None -> ());
    post_pkt t entry.we_pkt
  end
  else
    (* Stale entry (its request was superseded or failed): the packet is
       never transmitted, so its only reference dies here. *)
    Netsim.Packet.free entry.we_pkt

(* {2 Handler dispatch (§3.2)} *)

and invoke_handler t sess slot srv req_type =
  match Nexus.handler t.nexus_ req_type with
  | None -> () (* unknown request type: drop *)
  | Some (mode, handler_fn) -> (
      t.stats_.Rpc_stats.handled <- t.stats_.Rpc_stats.handled + 1;
      let req =
        match srv.req_buf with Some b -> b | None -> Msgbuf.view Bytes.empty ~off:0 ~len:0
      in
      let handle = Req_handle.make ~req_type ~req in
      handle.Req_handle.init_resp_fn <-
        (fun size ->
          if t.cfg.opts.preallocated_responses && size <= t.cfg.mtu then begin
            let buf =
              match slot.prealloc_resp with
              | Some b -> b
              | None ->
                  let b = Msgbuf.alloc ~max_size:t.cfg.mtu in
                  slot.prealloc_resp <- Some b;
                  b
            in
            Msgbuf.unsafe_set_size buf size;
            buf
          end
          else begin
            ch t t.cost.dyn_alloc;
            Msgbuf.alloc ~max_size:size
          end);
      handle.Req_handle.enqueue_fn <-
        (fun _h resp -> Proto.enqueue_response t.proto sess slot srv resp);
      handle.Req_handle.codec_mode_fn <- (fun () -> codec_mode t);
      srv.handler_running <- true;
      match mode with
      | Nexus.Dispatch ->
          handle.Req_handle.charge_fn <- (fun ns -> ch t ns);
          handle.Req_handle.codec_charge_fn <-
            (fun ~deser ~backend ~leaves ~bytes ->
              charge_codec_cpu t t.cpu_ ~traced:true ~deser ~backend ~leaves ~bytes);
          ch t t.cost.handler_dispatch;
          if Obs.Trace.enabled t.trace then begin
            (* Span over the CPU time the handler charges to the dispatch
               timeline, placed where that work begins. *)
            let h_start = Sim.Cpu.next_free t.cpu_ in
            handler_fn handle;
            Obs.Trace.complete t.trace ~ts:h_start
              ~dur:(max 0 (Sim.Time.sub (Sim.Cpu.next_free t.cpu_) h_start))
              ~cat:"rpc" ~name:"handler" ~pid:t.pid ~tid:t.tid
              [ ("type", Obs.Trace.I req_type) ]
          end
          else handler_fn handle
      | Nexus.Worker ->
          (* Hand off to a background worker thread; the response comes
             back through the background queue (§3.2). *)
          ch t (t.cost.worker_handoff / 2);
          if Obs.Trace.enabled t.trace then
            Obs.Trace.instant t.trace ~ts:(Sim.Engine.now t.engine) ~cat:"rpc"
              ~name:"worker_dispatch" ~pid:t.pid ~tid:t.tid
              [ ("type", Obs.Trace.I req_type) ];
          Nexus.submit_worker t.nexus_ (fun wcpu ->
              ignore
                (Sim.Cpu.charge wcpu (Cost_model.scaled t.cost (t.cost.worker_handoff / 2)));
              handle.Req_handle.charge_fn <-
                (fun ns -> ignore (Sim.Cpu.charge wcpu (Cost_model.scaled t.cost ns)));
              handle.Req_handle.codec_charge_fn <-
                (fun ~deser ~backend ~leaves ~bytes ->
                  charge_codec_cpu t wcpu ~traced:false ~deser ~backend ~leaves ~bytes);
              handle.Req_handle.enqueue_fn <-
                (fun _h resp ->
                  let at = Sim.Cpu.next_free wcpu in
                  Sim.Engine.schedule t.engine at (fun () ->
                      if Obs.Trace.enabled t.trace then
                        Obs.Trace.instant t.trace ~ts:(Sim.Engine.now t.engine)
                          ~cat:"rpc" ~name:"worker_done" ~pid:t.pid ~tid:t.tid
                          [ ("type", Obs.Trace.I req_type) ];
                      Queue.add
                        (fun () ->
                          ch t (t.cost.worker_handoff / 2);
                          Proto.enqueue_response t.proto sess slot srv resp)
                        t.bgq;
                      wake t));
              handler_fn handle))

(* {2 Client API} *)

let enqueue_request t sess ~req_type ~req ~resp ~cont =
  Proto.enqueue_request t.proto sess ~req_type ~req ~resp ~cont

let enqueue_request_hooked t sess ~req_type ~req ~resp ~on_complete ~cont =
  Proto.enqueue_request_hooked t.proto sess ~req_type ~req ~resp ~on_complete ~cont

(* {2 Sessions and session management} *)

let check_session_budget t =
  (* Credits per session must never exceed RQ descriptors (§4.3.1). *)
  let rq = Transport.Iface.rq_size t.transport_ in
  if (Proto.n_sessions t.proto + 1) * t.cfg.session_credits > rq then
    invalid_arg
      (Printf.sprintf
         "Rpc.create_session: session limit reached (%d sessions x %d credits vs RQ size %d)"
         (Proto.n_sessions t.proto + 1) t.cfg.session_credits rq)

let make_cc t ~sn =
  if t.cfg.opts.congestion_control then begin
    let controller =
      Cc.create ~phase:((t.host_ * 7) + sn) t.cfg.cc
        ~link_gbps:(Fabric.cluster (Nexus.fabric t.nexus_)).link_gbps
    in
    Obs.Metrics.gauge
      (Sim.Engine.metrics t.engine)
      ~name:"cc.rate_gbps"
      ~labels:[ ("host", string_of_int t.host_); ("sn", string_of_int sn) ]
      (fun () -> Cc.rate_bps controller /. 1e9);
    Some controller
  end
  else None

let create_session t ~remote_host ~remote_rpc_id ?(on_connect = fun _ -> ()) () =
  check_session_budget t;
  let sn = Proto.fresh_sn t.proto in
  let token = Fabric.fresh_session_token (Nexus.fabric t.nexus_) in
  let sess =
    Session.create ~sn ~role:Client ~token ~remote_host ~remote_rpc_id
      ~credits:t.cfg.session_credits ~req_window:t.cfg.req_window
  in
  sess.cc <- make_cc t ~sn;
  sess.connect_cb <- on_connect;
  Proto.add_session t.proto sess;
  Fabric.send_sm (Nexus.fabric t.nexus_) ~dst_host:remote_host ~dst_rpc:remote_rpc_id
    (Sm.Connect_req
       {
         client_host = t.host_;
         client_rpc = t.rpc_id;
         client_sn = sn;
         token;
         credits = t.cfg.session_credits;
       });
  sess

let accept_session t ~client_host ~client_rpc ~client_sn ~token =
  let sn = Proto.fresh_sn t.proto in
  let sess =
    Session.create ~sn ~role:Server ~token ~remote_host:client_host ~remote_rpc_id:client_rpc
      ~credits:t.cfg.session_credits ~req_window:t.cfg.req_window
  in
  sess.remote_sn <- client_sn;
  sess.state <- Connected;
  Proto.add_session t.proto sess;
  sn

let handle_sm t msg =
  match msg with
  | Sm.Connect_req { client_host; client_rpc; client_sn; token; credits = _ } ->
      let result =
        try
          Ok (check_session_budget t; accept_session t ~client_host ~client_rpc ~client_sn ~token)
        with Invalid_argument e -> Error e
      in
      Fabric.send_sm (Nexus.fabric t.nexus_) ~dst_host:client_host ~dst_rpc:client_rpc
        (Sm.Connect_resp { client_sn; result })
  | Sm.Connect_resp { client_sn; result } -> (
      match Proto.get_session t.proto client_sn with
      | None -> ()
      | Some sess -> (
          match result with
          | Ok server_sn ->
              sess.remote_sn <- server_sn;
              sess.state <- Connected;
              sess.connect_cb (Ok ());
              (* Admit requests enqueued while connecting. *)
              Proto.admit_backlog t.proto sess
          | Error e ->
              sess.state <- Error e;
              sess.connect_cb (Stdlib.Error (Err.Session_error e));
              Proto.fail_pending_requests sess (Err.Session_error e)))
  | Sm.Disconnect { server_sn; client_sn } -> (
      match Proto.get_session t.proto server_sn with
      | Some sess when sess.role = Server ->
          sess.state <- Destroyed;
          Proto.remove_session t.proto server_sn;
          Fabric.send_sm (Nexus.fabric t.nexus_) ~dst_host:sess.remote_host
            ~dst_rpc:sess.remote_rpc_id
            (Sm.Disconnect_ack { client_sn })
      | _ -> ())
  | Sm.Disconnect_ack { client_sn } -> (
      match Proto.get_session t.proto client_sn with
      | Some sess when sess.role = Client ->
          sess.state <- Destroyed;
          Proto.remove_session t.proto client_sn
      | _ -> ())

(* Node-failure handling (Appendix B): flush the TX DMA queue, then fail
   pending requests of sessions to the dead host with error codes. *)
let handle_peer_failure t failed_host =
  let touched = ref false in
  Proto.iter_sessions t.proto (fun sess ->
      if sess.remote_host = failed_host && sess.state <> Destroyed then begin
        if not !touched then begin
          touched := true;
          ch t (Transport.Iface.flush_time_ns t.transport_)
        end;
        sess.state <- Error "peer failed";
        if sess.role = Client then Proto.fail_pending_requests sess Err.Server_failure
      end)

(* Local crash (crash-with-restart): the process dies, losing every
   session, queue and in-flight request; continuations of lost requests are
   failed rather than leaked so callers observe each request exactly once.
   A restarted host keeps its handler registry but comes back with no
   sessions; peers recover via their own bounded-retransmission reset. *)
let handle_local_crash t =
  Proto.iter_sessions t.proto (fun sess ->
      if sess.state <> Destroyed then begin
        sess.state <- Error "local host crashed";
        if sess.role = Client then
          Proto.fail_pending_requests sess (Err.Session_error "local host crashed")
      end);
  Proto.clear_on_crash t.proto;
  Queue.clear t.bgq;
  t.wheel <- None;
  Transport.Iface.reset_rx t.transport_

let destroy_session t sess =
  if sess.role <> Client then invalid_arg "Rpc.destroy_session: not a client session";
  (match sess.state with
  | Destroyed -> invalid_arg "Rpc.destroy_session: already destroyed"
  | Connect_pending ->
      (* The server-side session number is unknown until the handshake
         completes: a disconnect now could not name the peer state to free. *)
      invalid_arg "Rpc.destroy_session: handshake still in flight"
  | _ -> ());
  let pending =
    Array.exists (function Some { busy = true; _ } -> true | _ -> false) sess.slots
    || not (Queue.is_empty sess.backlog)
  in
  if pending then invalid_arg "Rpc.destroy_session: session has pending requests";
  Fabric.send_sm (Nexus.fabric t.nexus_) ~dst_host:sess.remote_host
    ~dst_rpc:sess.remote_rpc_id
    (Sm.Disconnect { server_sn = sess.remote_sn; client_sn = sess.sn })

let create nexus_ ~rpc_id =
  let fabric = Nexus.fabric nexus_ in
  let engine = Fabric.engine fabric in
  let host_ = Nexus.host nexus_ in
  let cfg = Fabric.config fabric in
  let cluster = Fabric.cluster fabric in
  let cpu_ = Sim.Cpu.create engine ~name:(Printf.sprintf "h%d-rpc%d" host_ rpc_id) in
  (* The protocol core and this endpoint reference each other; the [env]
     closures (and the shm mux's charge hook) only run once the simulation
     does, after [self] is set. *)
  let self = ref None in
  let get () = match !self with Some t -> t | None -> assert false in
  let wire_transport =
    match cfg.transport with
    | Config.Raw_eth ->
        let nic_cfg = { cluster.nic_config with multi_packet_rq = cfg.opts.multi_packet_rq } in
        Transport.Nic_udp.create engine (Fabric.net fabric) ~host:host_ ~mtu:cfg.mtu nic_cfg
    | Config.Rdma_rc -> Rdma.Rc_transport.create engine (Fabric.net fabric) ~host:host_ cluster
  in
  let shm_, transport_ =
    if not cfg.shm_enabled then (None, wire_transport)
    else begin
      let ep, tp =
        Shm.create engine ~hub:(Fabric.shm_hub fabric) ~host:host_ ~rpc_id
          ~inner:wire_transport
          ~colocated:(fun h -> Fabric.colocated fabric host_ h)
          ~charge:(fun ns -> ignore (Sim.Cpu.charge (get ()).cpu_ ns))
          ~mode:cfg.shm_mode ~slots:cfg.shm_slots ~hop_ns:cfg.shm_hop_ns
          ~costs:(Cost_model.shm_costs (Fabric.cost fabric))
          ()
      in
      (Some ep, tp)
    end
  in
  let env =
    {
      Proto.ch = (fun ns -> ch (get ()) ns);
      charge_memcpy =
        (fun len ->
          let t = get () in ignore (Sim.Cpu.charge t.cpu_ (Cost_model.memcpy_cost t.cost len)));
      now_ts = (fun () -> now_ts (get ()));
      cpu_time =
        (fun () ->
          let t = get () in
          max (Sim.Engine.now t.engine) (Sim.Cpu.next_free t.cpu_));
      cc_sample = (fun sess ~sample_rtt_ns ~marked -> cc_update (get ()) sess ~sample_rtt_ns ~marked);
      transmit =
        (fun slot pkt ~wire_bytes ~tx_item ~is_retx ->
          transmit_cc (get ()) slot pkt ~wire_bytes ~tx_item ~is_retx);
      post = (fun pkt -> post_pkt (get ()) pkt);
      wake = (fun () -> wake (get ()));
      alive = (fun () -> not (dead (get ())));
      rtt_sample =
        (fun s -> match (get ()).rtt_probe with Some probe -> probe s | None -> ());
      zero_copy_dispatch =
        (fun req_type ->
          match Nexus.handler nexus_ req_type with Some (Nexus.Dispatch, _) -> true | _ -> false);
      invoke = (fun sess slot srv req_type -> invoke_handler (get ()) sess slot srv req_type);
    }
  in
  let stats_ = Rpc_stats.create () in
  let cost = Fabric.cost fabric in
  let trace = Sim.Engine.trace engine in
  let pid = Obs.Trace.host_pid host_ in
  Obs.Trace.register_process trace ~pid (Printf.sprintf "host%d" host_);
  let tid = Obs.Trace.register_track trace ~pid (Printf.sprintf "rpc%d" rpc_id) in
  let proto =
    Proto.create ~env ~engine ~host:host_ ~cfg ~cost ~transport:transport_ ~stats:stats_ ~tid
  in
  let t =
    {
      nexus_; rpc_id; host_; engine; cfg; cost; cpu_; transport_; shm_; proto; stats_;
      bgq = Queue.create ();
      wheel = None;
      loop_scheduled = false;
      batch_ts = Sim.Time.zero;
      rtt_probe = None;
      activate_ev = (fun () -> ());
      wake_ev = (fun () -> ());
      rx_each = (fun _ -> ());
      tx_deferred = Sim.Ring.create ~capacity:32 ~dummy:Netsim.Packet.nil ();
      tx_deferred_ev = (fun () -> ());
      trace;
      pid;
      tid;
    }
  in
  self := Some t;
  t.activate_ev <- (fun () -> activate t);
  t.wake_ev <- (fun () -> wake t);
  t.rx_each <- (fun pkt -> Proto.rx_pkt t.proto pkt);
  t.tx_deferred_ev <-
    (fun () -> Transport.Iface.tx_burst t.transport_ (Sim.Ring.take t.tx_deferred));
  let m = Sim.Engine.metrics engine in
  let labels = [ ("host", string_of_int host_); ("rpc", string_of_int rpc_id) ] in
  Obs.Metrics.counter m ~name:"rpc.tx_pkts" ~labels (fun () -> stats_.Rpc_stats.tx_pkts);
  Obs.Metrics.counter m ~name:"rpc.rx_pkts" ~labels (fun () -> stats_.Rpc_stats.rx_pkts);
  Obs.Metrics.counter m ~name:"rpc.rx_corrupt" ~labels (fun () -> stats_.Rpc_stats.rx_corrupt);
  Obs.Metrics.counter m ~name:"rpc.retransmits" ~labels (fun () -> stats_.Rpc_stats.retransmits);
  Obs.Metrics.counter m ~name:"rpc.retx_warnings" ~labels (fun () ->
      stats_.Rpc_stats.retx_warnings);
  Obs.Metrics.counter m ~name:"rpc.session_resets" ~labels (fun () ->
      stats_.Rpc_stats.session_resets);
  Obs.Metrics.counter m ~name:"rpc.completed" ~labels (fun () -> stats_.Rpc_stats.completed);
  Obs.Metrics.counter m ~name:"rpc.handled" ~labels (fun () -> stats_.Rpc_stats.handled);
  Obs.Metrics.counter m ~name:"rpc.wheel_inserts" ~labels (fun () ->
      stats_.Rpc_stats.wheel_inserts);
  Obs.Metrics.gauge m ~name:"rpc.wheel_depth" ~labels (fun () ->
      match t.wheel with Some w -> float_of_int (Wheel.pending w) | None -> 0.);
  Nexus.register_rx nexus_ ~rpc_id ~rx:(fun pkt -> Transport.Iface.receive t.transport_ pkt);
  Transport.Iface.set_rx_notify t.transport_ (fun () -> wake t);
  Fabric.register_sm fabric ~host:host_ ~rpc_id (fun msg ->
      if not (dead t) then handle_sm t msg);
  Fabric.on_host_failure fabric (fun failed ->
      if (not (dead t)) && failed <> host_ then handle_peer_failure t failed);
  Fabric.on_host_killed fabric (fun killed ->
      if killed = host_ then handle_local_crash t);
  t

let set_rtt_probe t probe = t.rtt_probe <- Some probe
