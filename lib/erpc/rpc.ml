open Session

type wheel_entry = {
  we_slot : Session.sslot;
  we_req_num : int;
  we_item : int;  (* TX item index, to re-stamp the RTT clock at actual TX *)
  we_pkt : Netsim.Packet.t;
}

type t = {
  nexus_ : Nexus.t;
  rpc_id : int;
  host_ : int;
  engine : Sim.Engine.t;
  cfg : Config.t;
  cost : Cost_model.t;
  cpu_ : Sim.Cpu.t;
  nic_ : Nic.t;
  mutable sessions : Session.session option array;
  mutable n_sessions : int;
  txq : Session.sslot Queue.t;
  bgq : (unit -> unit) Queue.t;
  retxq : Session.sslot Queue.t;
  mutable wheel : wheel_entry Wheel.t option;
  mutable loop_scheduled : bool;
  mutable batch_ts : Sim.Time.t;
  (* statistics *)
  mutable st_rx_pkts : int;
  mutable st_tx_pkts : int;
  mutable st_retransmits : int;
  mutable st_completed : int;
  mutable st_handled : int;
  mutable st_wheel_inserts : int;
  mutable st_rx_corrupt : int;
  mutable st_retx_warnings : int;
  mutable st_session_resets : int;
  mutable rtt_probe : (int -> unit) option;
}

let id t = t.rpc_id
let host t = t.host_
let nexus t = t.nexus_
let cpu t = t.cpu_
let config t = t.cfg
let nic t = t.nic_
let stat_rx_pkts t = t.st_rx_pkts
let stat_tx_pkts t = t.st_tx_pkts
let stat_retransmits t = t.st_retransmits
let stat_completed t = t.st_completed
let stat_handled t = t.st_handled
let stat_wheel_inserts t = t.st_wheel_inserts
let stat_rx_corrupt t = t.st_rx_corrupt
let stat_retx_warnings t = t.st_retx_warnings
let stat_session_resets t = t.st_session_resets
let stat_session_retransmits (_ : t) (sess : Session.session) = sess.retransmits

let stat_timely_updates t =
  Array.fold_left
    (fun acc s ->
      match s with
      | Some { cc = Some controller; _ } -> acc + Cc.updates controller
      | _ -> acc)
    0 t.sessions

(* CPU cost charging, scaled to the cluster's CPU speed. *)
let ch t ns = ignore (Sim.Cpu.charge t.cpu_ (Cost_model.scaled t.cost ns))

let dead t = Nexus.dead t.nexus_

let disarm_rto slot =
  match slot.rto with Some timer -> Sim.Timer.disarm timer | None -> ()

(* Fail every in-flight and backlogged request of [sess] with [err]:
   timers are disarmed, rate-limiter references dropped, msgbufs returned
   to the application, and the session's credits restored to their limit
   (the session is unusable afterward, so its accounting must balance). *)
let fail_pending_requests _t sess err =
  Array.iter
    (fun s ->
      match s with
      | Some ({ busy = true; args = Some args; _ } as slot) when sess.role = Client ->
          disarm_rto slot;
          (match slot.cli with
          | Some c ->
              c.wheel_refs <- 0;
              c.retx_in_wheel <- false;
              c.consec_retx <- 0
          | None -> ());
          slot.busy <- false;
          slot.args <- None;
          Msgbuf.return_to_app args.req;
          Msgbuf.return_to_app args.resp;
          args.cont (Stdlib.Error err)
      | _ -> ())
    sess.slots;
  Queue.iter
    (fun args ->
      Msgbuf.return_to_app args.req;
      Msgbuf.return_to_app args.resp;
      args.cont (Stdlib.Error err))
    sess.backlog;
  Queue.clear sess.backlog;
  Queue.iter (fun waiter -> waiter.in_credit_waitq <- false) sess.credit_waiters;
  Queue.clear sess.credit_waiters;
  sess.credits <- sess.credit_limit

(* Session reset (§4.3): entered after [max_retransmits] consecutive RTOs
   without progress. In-flight slots complete with [Err.Peer_unreachable],
   RTO timers are disarmed and msgbufs reclaimed; the session cannot be
   used again. *)
let reset_session t sess =
  t.st_session_resets <- t.st_session_resets + 1;
  sess.state <- Error "peer unreachable";
  fail_pending_requests t sess Err.Peer_unreachable

(* {2 Event loop scheduling} *)

let rec schedule_activation t =
  if not t.loop_scheduled then begin
    t.loop_scheduled <- true;
    let at = Sim.Cpu.start_slice t.cpu_ in
    Sim.Engine.schedule t.engine at (fun () -> activate t)
  end

and wake t = if not (dead t) then schedule_activation t

(* One event-loop activation: drain pending work, charging modeled CPU.
   Mirrors eRPC's run_event_loop_once: retransmissions, RX burst,
   background responses, rate-limiter wheel, TX burst. *)
and activate t =
  t.loop_scheduled <- false;
  if not (dead t) then begin
    t.batch_ts <- Sim.Engine.now t.engine;
    ch t t.cost.loop_overhead;
    if t.cfg.opts.congestion_control && t.cfg.opts.batched_timestamps then
      ch t (2 * t.cost.rdtsc) (* one timestamp per RX batch, one per TX batch *);
    (* Retransmissions queued by RTO timers. *)
    while not (Queue.is_empty t.retxq) do
      do_retransmit t (Queue.take t.retxq)
    done;
    (* RX burst. *)
    let pkts = Nic.poll_rx t.nic_ ~max:t.cfg.rx_batch in
    let n_rx = List.length pkts in
    if n_rx > 0 then begin
      List.iter (fun pkt -> process_pkt t pkt) pkts;
      ch t (Nic.replenish_rq t.nic_ n_rx)
    end;
    (* Background-thread completions (worker handler responses, failure
       cleanup). *)
    while not (Queue.is_empty t.bgq) do
      (Queue.take t.bgq) ()
    done;
    (* Rate limiter. *)
    (match t.wheel with
    | Some wheel when Wheel.pending wheel > 0 ->
        ignore
          (Wheel.poll wheel ~now:(Sim.Engine.now t.engine) (fun entry -> wheel_fire t entry))
    | _ -> ());
    (* TX burst. *)
    let budget = ref t.cfg.tx_batch in
    let n_in_txq = Queue.length t.txq in
    let serviced = ref 0 in
    while !budget > 0 && !serviced < n_in_txq && not (Queue.is_empty t.txq) do
      incr serviced;
      let slot = Queue.take t.txq in
      slot.in_txq <- false;
      service_slot_tx t slot budget
    done;
    (* Re-arm if work remains. *)
    if
      Nic.rx_ring_depth t.nic_ > 0
      || (not (Queue.is_empty t.txq))
      || (not (Queue.is_empty t.bgq))
      || not (Queue.is_empty t.retxq)
    then schedule_activation t
  end

(* {2 Timestamps and congestion control} *)

and now_ts t =
  if not t.cfg.opts.congestion_control then t.batch_ts
  else if t.cfg.opts.batched_timestamps then t.batch_ts
  else begin
    ch t t.cost.rdtsc;
    Sim.Engine.now t.engine
  end

and cc_update t sess ~sample_rtt_ns ~marked =
  if t.cfg.opts.congestion_control then
    match sess.cc with
    | None -> ()
    | Some controller ->
        if
          t.cfg.opts.timely_bypass
          && Cc.bypassable controller ~rtt_ns:sample_rtt_ns ~marked
               ~t_low_ns:t.cfg.cc.t_low_ns
        then () (* bypass: uncongested session with no congestion signal *)
        else begin
          ch t t.cost.timely_update;
          Cc.on_sample controller ~rtt_ns:sample_rtt_ns ~marked
            ~now_ns:(Sim.Engine.now t.engine)
        end

(* Post a packet to the NIC at the time the dispatch thread's charged work
   completes — the packet leaves the host when the CPU has actually built
   it. *)
and post_pkt t pkt =
  t.st_tx_pkts <- t.st_tx_pkts + 1;
  let at = Sim.Cpu.next_free t.cpu_ in
  if at <= Sim.Engine.now t.engine then Nic.post_send t.nic_ pkt
  else Sim.Engine.schedule t.engine at (fun () -> Nic.post_send t.nic_ pkt)

(* Client-side transmission honoring the Carousel rate limiter. *)
and transmit_cc t slot pkt ~wire_bytes ~tx_item ~is_retx =
  let sess = slot.session in
  if not t.cfg.opts.congestion_control then post_pkt t pkt
  else
    match sess.cc with
    | None -> post_pkt t pkt
    | Some controller ->
        ch t t.cost.cc_check;
        if t.cfg.opts.rate_limiter_bypass && Cc.uncongested controller then post_pkt t pkt
        else begin
          let now = Sim.Engine.now t.engine in
          let ts = max now sess.next_tx_ts in
          sess.next_tx_ts <-
            Sim.Time.add ts (Cc.pacing_delay_ns controller ~bytes:wire_bytes);
          ch t t.cost.wheel_insert;
          t.st_wheel_inserts <- t.st_wheel_inserts + 1;
          let wheel =
            match t.wheel with
            | Some w -> w
            | None ->
                let w =
                  Wheel.create ~slot_ns:t.cfg.wheel_slot_ns ~num_slots:t.cfg.wheel_num_slots
                in
                t.wheel <- Some w;
                w
          in
          Wheel.insert wheel ~now ~at:ts
            { we_slot = slot; we_req_num = slot.req_num; we_item = tx_item; we_pkt = pkt };
          (match slot.cli with
          | Some c ->
              c.wheel_refs <- c.wheel_refs + 1;
              (* A retransmitted copy is now queued: responses must be
                 dropped until the wheel holds no reference to this
                 request's msgbuf (Appendix C). *)
              if is_retx then c.retx_in_wheel <- true
          | None -> ());
          Sim.Engine.schedule t.engine ts (fun () -> wake t)
        end

and wheel_fire t entry =
  ch t t.cost.wheel_poll_pkt;
  let slot = entry.we_slot in
  (* The slot's wheel occupancy drains regardless of whether the entry is
     still current; only current entries are transmitted. *)
  (match slot.cli with
  | Some c ->
      c.wheel_refs <- max 0 (c.wheel_refs - 1);
      if c.wheel_refs = 0 then c.retx_in_wheel <- false
  | None -> ());
  if entry.we_req_num = slot.req_num then begin
    (match slot.cli with
    | Some c ->
        (* RTT samples must measure the network, not the pacing delay the
           rate limiter itself imposed: re-stamp at actual transmission. *)
        c.tx_ts.(entry.we_item mod Array.length c.tx_ts) <- Sim.Engine.now t.engine
    | None -> ());
    post_pkt t entry.we_pkt
  end

(* {2 Client TX path} *)

and push_txq t slot =
  if not slot.in_txq then begin
    slot.in_txq <- true;
    Queue.add slot t.txq
  end

and client_next_item_ready (cli : client_info) =
  let k = cli.num_tx in
  if k < cli.n_req_pkts then true
  else
    cli.n_resp_pkts > 0
    && k < cli.n_req_pkts + cli.n_resp_pkts - 1
    && cli.num_rx >= cli.n_req_pkts

and service_slot_tx t slot budget =
  let sess = slot.session in
  if sess.state = Connected && slot.busy then begin
    match (slot.args, slot.cli) with
    | Some args, Some cli ->
        let continue = ref true in
        while !continue && !budget > 0 && sess.credits > 0 && client_next_item_ready cli do
          send_tx_item t slot args cli;
          decr budget
        done;
        if client_next_item_ready cli then
          if sess.credits = 0 then begin
            (* Blocked on credits: park until a CR/response returns one,
               so other slots of the session are not starved. *)
            if not slot.in_credit_waitq then begin
              slot.in_credit_waitq <- true;
              Queue.add slot sess.credit_waiters
            end
          end
          else if !budget = 0 then push_txq t slot
    | _ -> ()
  end

and send_tx_item t slot args cli =
  let sess = slot.session in
  let k = cli.num_tx in
  let stamp = now_ts t in
  cli.tx_ts.(k mod Array.length cli.tx_ts) <- stamp;
  sess.credits <- sess.credits - 1;
  ch t t.cost.credit_logic;
  let mtu = t.cfg.mtu in
  let flow = Wire.flow_hash ~src_host:t.host_ ~dst_host:sess.remote_host ~sn:sess.sn in
  let pkt, wire_bytes =
    if k < cli.n_req_pkts then begin
      let msg_size = Msgbuf.size args.req in
      let hdr =
        {
          Pkthdr.req_type = args.req_type;
          msg_size;
          dest_session = sess.remote_sn;
          pkt_type = Pkthdr.Req;
          pkt_num = k;
          req_num = slot.req_num;
          ecn_echo = false;
        }
      in
      let len = Pkthdr.data_bytes hdr ~mtu in
      ch t t.cost.tx_data_pkt;
      let payload = (Msgbuf.unsafe_bytes args.req, Msgbuf.unsafe_offset args.req + (k * mtu), len) in
      ( Wire.make ~src_host:t.host_ ~dst_host:sess.remote_host ~dst_rpc:sess.remote_rpc_id
          ~wire_overhead:t.cfg.wire_overhead ~flow ~hdr ~payload (),
        len + t.cfg.wire_overhead )
    end
    else begin
      (* Request-for-response for response packet (k - N + 1). *)
      let hdr =
        {
          Pkthdr.req_type = args.req_type;
          msg_size = 0;
          dest_session = sess.remote_sn;
          pkt_type = Pkthdr.Rfr;
          pkt_num = k - cli.n_req_pkts + 1;
          req_num = slot.req_num;
          ecn_echo = false;
        }
      in
      ch t t.cost.tx_ctrl_pkt;
      ( Wire.make ~src_host:t.host_ ~dst_host:sess.remote_host ~dst_rpc:sess.remote_rpc_id
          ~wire_overhead:t.cfg.wire_overhead ~flow ~hdr (),
        t.cfg.wire_overhead )
    end
  in
  (* Only retransmitted REQUEST DATA packets reference the request msgbuf
     from the rate limiter; RFRs are header-only, so they never force
     response drops (Appendix C). *)
  let is_retx = k < cli.max_tx && k < cli.n_req_pkts in
  cli.num_tx <- k + 1;
  if cli.num_tx > cli.max_tx then cli.max_tx <- cli.num_tx;
  transmit_cc t slot pkt ~wire_bytes ~tx_item:k ~is_retx

(* {2 Retransmission (go-back-N, §5.3)} *)

and arm_rto t slot =
  let timer =
    match slot.rto with
    | Some timer -> timer
    | None ->
        let timer =
          Sim.Timer.create t.engine ~callback:(fun () ->
              if slot.busy && not (dead t) then begin
                slot.needs_retx <- true;
                Queue.add slot t.retxq;
                wake t
              end)
        in
        slot.rto <- Some timer;
        timer
  in
  Sim.Timer.arm_after timer t.cfg.rto_ns

and do_retransmit t slot =
  slot.needs_retx <- false;
  if slot.busy then
    match slot.cli with
    | None -> ()
    | Some cli ->
        let sess = slot.session in
        cli.consec_retx <- cli.consec_retx + 1;
        if cli.consec_retx >= t.cfg.max_retransmits then begin
          (* Retry budget exhausted: the peer is gone (crashed, restarted
             without our session state, or partitioned). Reset the session
             instead of retransmitting forever. *)
          ch t (Nic.flush_time_ns t.nic_);
          reset_session t sess
        end
        else begin
          if 2 * cli.consec_retx > t.cfg.max_retransmits then
            t.st_retx_warnings <- t.st_retx_warnings + 1;
          t.st_retransmits <- t.st_retransmits + 1;
          cli.retransmits <- cli.retransmits + 1;
          sess.retransmits <- sess.retransmits + 1;
          (* Roll back wire state and reclaim credits. *)
          sess.credits <- sess.credits + (cli.num_tx - cli.num_rx);
          cli.num_tx <- cli.num_rx;
          (* Flush the TX DMA queue so no stale reference to the request
             msgbuf survives (§4.2.2): expensive, but only on loss. *)
          ch t (Nic.flush_time_ns t.nic_);
          arm_rto t slot;
          push_txq t slot
        end

(* {2 RX demultiplexing} *)

and process_pkt t pkt =
  match pkt.Netsim.Packet.body with
  | Wire.Pkt _ when not (Wire.verify pkt) ->
      (* Failed wire checksum: the packet was corrupted in flight. Drop it;
         the sender's RTO recovers it like a loss. *)
      t.st_rx_pkts <- t.st_rx_pkts + 1;
      t.st_rx_corrupt <- t.st_rx_corrupt + 1;
      ch t t.cost.rx_pkt
  | Wire.Pkt { hdr; data; _ } -> (
      t.st_rx_pkts <- t.st_rx_pkts + 1;
      ch t t.cost.rx_pkt;
      let ecn = pkt.Netsim.Packet.ecn in
      let sn = hdr.Pkthdr.dest_session in
      if sn >= 0 && sn < Array.length t.sessions then
        match t.sessions.(sn) with
        | None -> ()
        | Some sess -> (
            let slot = Session.slot sess (hdr.req_num mod t.cfg.req_window) in
            match (hdr.pkt_type, sess.role) with
            | (Pkthdr.Cr | Pkthdr.Resp), Client -> client_rx t sess slot hdr data ~ecn
            | (Pkthdr.Req | Pkthdr.Rfr), Server -> server_rx t sess slot hdr data ~ecn
            | _ -> () (* role mismatch: corrupt/stale packet *)))
  | _ -> ()

(* {2 Client RX} *)

and accept_rx_item t slot (cli : client_info) ~marked =
  let sess = slot.session in
  let i = cli.num_rx in
  cli.num_rx <- i + 1;
  cli.consec_retx <- 0 (* progress: the retry budget is consecutive RTOs *);
  sess.credits <- sess.credits + 1;
  ch t t.cost.credit_logic;
  (* A credit became available: unpark slots blocked on credits. *)
  while not (Queue.is_empty sess.credit_waiters) do
    let waiter = Queue.take sess.credit_waiters in
    waiter.in_credit_waitq <- false;
    if waiter.busy then push_txq t waiter
  done;
  let stamp = now_ts t in
  let sample = Sim.Time.sub stamp cli.tx_ts.(i mod Array.length cli.tx_ts) in
  (match t.rtt_probe with Some probe -> probe sample | None -> ());
  if t.cfg.opts.congestion_control then begin
    ch t t.cost.cc_check;
    cc_update t sess ~sample_rtt_ns:sample ~marked
  end;
  arm_rto t slot

and client_rx t sess slot hdr data ~ecn =
  (* Congestion signal: this packet was marked on the reverse path, or it
     acknowledges a marked forward-path packet. *)
  let marked = ecn || hdr.Pkthdr.ecn_echo in
  if slot.busy && hdr.Pkthdr.req_num = slot.req_num then
    match (slot.args, slot.cli) with
    | Some args, Some cli -> (
        match hdr.pkt_type with
        | Pkthdr.Cr ->
            (* CR for request packet [pkt_num] is RX item [pkt_num]. In
               cumulative mode one CR acknowledges every request packet up
               to [pkt_num]. *)
            let acceptable =
              if t.cfg.opts.cumulative_crs then
                hdr.pkt_num >= cli.num_rx && hdr.pkt_num < cli.n_req_pkts - 1
              else hdr.pkt_num = cli.num_rx
            in
            if acceptable then begin
              (* Intermediate items return credits without separate RTT
                 samples; the newest item carries the sample. *)
              while cli.num_rx < hdr.pkt_num do
                cli.num_rx <- cli.num_rx + 1;
                sess.credits <- sess.credits + 1
              done;
              accept_rx_item t slot cli ~marked;
              if client_next_item_ready cli && sess.credits > 0 then begin
                push_txq t slot;
                wake t
              end
            end
        | Pkthdr.Resp ->
            let item = cli.n_req_pkts - 1 + hdr.pkt_num in
            if item = cli.num_rx then begin
              if cli.retx_in_wheel then
                (* A retransmitted packet of this request sits in the rate
                   limiter: drop the response (Appendix C). *)
                ()
              else begin
                if hdr.pkt_num = 0 then begin
                  if hdr.msg_size > Msgbuf.max_size args.resp then
                    invalid_arg "eRPC: response larger than client's response msgbuf";
                  Msgbuf.unsafe_set_size args.resp hdr.msg_size;
                  cli.n_resp_pkts <- max 1 ((hdr.msg_size + t.cfg.mtu - 1) / t.cfg.mtu)
                end;
                (* Copy response data into the client's response msgbuf
                   (§3.1); this copy is a real CPU cost (§6.4). *)
                let len = Bytes.length data in
                if len > 0 then begin
                  Msgbuf.blit_from_bytes data ~src_off:0 args.resp
                    ~dst_off:(hdr.pkt_num * t.cfg.mtu) ~len;
                  ignore (Sim.Cpu.charge t.cpu_ (Cost_model.memcpy_cost t.cost len))
                end;
                accept_rx_item t slot cli ~marked;
                if cli.num_rx = cli.n_req_pkts - 1 + cli.n_resp_pkts then
                  complete_request t slot args
                else if client_next_item_ready cli && sess.credits > 0 then begin
                  push_txq t slot;
                  wake t
                end
              end
            end
        | Pkthdr.Req | Pkthdr.Rfr -> ())
    | _ -> ()

and complete_request t slot args =
  let sess = slot.session in
  disarm_rto slot;
  t.st_completed <- t.st_completed + 1;
  slot.busy <- false;
  slot.args <- None;
  Msgbuf.return_to_app args.req;
  Msgbuf.return_to_app args.resp;
  ch t t.cost.continuation;
  args.cont (Ok ());
  (* Admit backlogged requests into freed slots. *)
  let continue = ref true in
  while !continue && not (Queue.is_empty sess.backlog) do
    match Session.free_slot sess ~req_window:t.cfg.req_window with
    | Some free -> start_request t free (Queue.take sess.backlog)
    | None -> continue := false
  done

(* {2 Server RX} *)

and send_server_pkt t sess slot ~pkt_type ~pkt_num ~msg_size ~payload ~req_type ~ecn_echo =
  let hdr =
    {
      Pkthdr.req_type;
      msg_size;
      dest_session = sess.remote_sn;
      pkt_type;
      pkt_num;
      req_num = slot.req_num;
      ecn_echo;
    }
  in
  let flow = Wire.flow_hash ~src_host:t.host_ ~dst_host:sess.remote_host ~sn:sess.remote_sn in
  let pkt =
    Wire.make ~src_host:t.host_ ~dst_host:sess.remote_host ~dst_rpc:sess.remote_rpc_id
      ~wire_overhead:t.cfg.wire_overhead ~flow ~hdr ?payload ()
  in
  (match pkt_type with
  | Pkthdr.Cr -> ch t t.cost.tx_ctrl_pkt
  | _ -> ch t t.cost.tx_data_pkt);
  post_pkt t pkt

and send_cr t sess slot ~pkt_num ~req_type ~ecn_echo =
  send_server_pkt t sess slot ~pkt_type:Pkthdr.Cr ~pkt_num ~msg_size:0 ~payload:None ~req_type
    ~ecn_echo

and send_resp_pkt t sess slot ~pkt_num ~ecn_echo =
  match slot.srv with
  | Some ({ resp_buf = Some resp; _ } as srv) when srv.handler_done ->
      let msg_size = Msgbuf.size resp in
      let mtu = t.cfg.mtu in
      let len =
        let off = pkt_num * mtu in
        if off >= msg_size then 0 else min mtu (msg_size - off)
      in
      let payload =
        Some (Msgbuf.unsafe_bytes resp, Msgbuf.unsafe_offset resp + (pkt_num * mtu), len)
      in
      send_server_pkt t sess slot ~pkt_type:Pkthdr.Resp ~pkt_num ~msg_size ~payload
        ~req_type:0 ~ecn_echo
  | _ -> ()

and begin_new_request t sess slot hdr =
  let srv = Session.server_info slot in
  assert (not srv.handler_running);
  (* The previous response buffer is released: the client has completed the
     previous request, or it would not have issued a new one on this slot. *)
  (match srv.resp_buf with
  | Some resp when Msgbuf.owner resp = Msgbuf.Owned_by_erpc -> Msgbuf.return_to_app resp
  | _ -> ());
  srv.resp_buf <- None;
  srv.req_buf <- None;
  srv.handler_done <- false;
  srv.num_rx <- 0;
  srv.n_req_pkts <- max 1 ((hdr.Pkthdr.msg_size + t.cfg.mtu - 1) / t.cfg.mtu);
  slot.req_num <- hdr.req_num;
  slot.busy <- true;
  ignore sess

and server_rx t sess slot hdr data ~ecn =
  match hdr.Pkthdr.pkt_type with
  | Pkthdr.Req ->
      if hdr.req_num < slot.req_num then () (* stale request: already superseded *)
      else begin
        if hdr.req_num > slot.req_num then begin_new_request t sess slot hdr;
        let srv = Session.server_info slot in
        let p = hdr.pkt_num in
        if p < srv.num_rx then begin
          (* Duplicate from a client rollback: re-ack idempotently; the
             handler is never run twice (at-most-once). Cumulative mode
             re-acks everything received so far. *)
          if p < srv.n_req_pkts - 1 then begin
            let ack =
              if t.cfg.opts.cumulative_crs then min (srv.num_rx - 1) (srv.n_req_pkts - 2)
              else p
            in
            send_cr t sess slot ~pkt_num:ack ~req_type:hdr.req_type ~ecn_echo:ecn
          end
          else if srv.handler_done then send_resp_pkt t sess slot ~pkt_num:0 ~ecn_echo:ecn
        end
        else if p > srv.num_rx then () (* reordered: treated as loss *)
        else begin
          srv.num_rx <- p + 1;
          store_req_data t slot srv hdr data;
          if p < srv.n_req_pkts - 1 then begin
            let send_now =
              (not t.cfg.opts.cumulative_crs)
              || (p + 1) mod t.cfg.cr_stride = 0
              || p = srv.n_req_pkts - 2
            in
            if send_now then send_cr t sess slot ~pkt_num:p ~req_type:hdr.req_type ~ecn_echo:ecn
          end
          else begin
            (* The echo for the last request packet rides on response
               packet 0, sent when the handler responds. *)
            srv.ecn_pending <- ecn;
            invoke_handler t sess slot srv hdr.req_type
          end
        end
      end
  | Pkthdr.Rfr ->
      if hdr.req_num = slot.req_num then
        send_resp_pkt t sess slot ~pkt_num:hdr.pkt_num ~ecn_echo:ecn
  | Pkthdr.Cr | Pkthdr.Resp -> ()

and store_req_data t _slot srv hdr data =
  let single_pkt = srv.n_req_pkts = 1 in
  let zero_copy_ok =
    single_pkt && t.cfg.opts.zero_copy_rx
    &&
    match Nexus.handler t.nexus_ hdr.Pkthdr.req_type with
    | Some (Nexus.Dispatch, _) -> true
    | _ -> false
  in
  if zero_copy_ok then
    (* Dispatch handler runs directly on the RX ring buffer (§4.2.3). *)
    srv.req_buf <- Some (Msgbuf.view data ~off:0 ~len:(Bytes.length data))
  else begin
    (match srv.req_buf with
    | Some _ -> ()
    | None ->
        ch t t.cost.dyn_alloc;
        let buf = Msgbuf.alloc ~max_size:hdr.msg_size in
        Msgbuf.take_for_erpc buf;
        srv.req_buf <- Some buf);
    let len = Bytes.length data in
    if len > 0 then begin
      match srv.req_buf with
      | Some buf ->
          Msgbuf.blit_from_bytes data ~src_off:0 buf ~dst_off:(hdr.pkt_num * t.cfg.mtu) ~len;
          ignore (Sim.Cpu.charge t.cpu_ (Cost_model.memcpy_cost t.cost len))
      | None -> assert false
    end
  end

and invoke_handler t sess slot srv req_type =
  match Nexus.handler t.nexus_ req_type with
  | None -> () (* unknown request type: drop *)
  | Some (mode, handler_fn) -> (
      t.st_handled <- t.st_handled + 1;
      let req =
        match srv.req_buf with Some b -> b | None -> Msgbuf.view Bytes.empty ~off:0 ~len:0
      in
      let handle = Req_handle.make ~req_type ~req in
      handle.Req_handle.init_resp_fn <-
        (fun size ->
          if t.cfg.opts.preallocated_responses && size <= t.cfg.mtu then begin
            let buf =
              match slot.prealloc_resp with
              | Some b -> b
              | None ->
                  let b = Msgbuf.alloc ~max_size:t.cfg.mtu in
                  slot.prealloc_resp <- Some b;
                  b
            in
            Msgbuf.unsafe_set_size buf size;
            buf
          end
          else begin
            ch t t.cost.dyn_alloc;
            Msgbuf.alloc ~max_size:size
          end);
      handle.Req_handle.enqueue_fn <-
        (fun h resp -> do_enqueue_response t sess slot srv h resp);
      srv.handler_running <- true;
      match mode with
      | Nexus.Dispatch ->
          handle.Req_handle.charge_fn <- (fun ns -> ch t ns);
          ch t t.cost.handler_dispatch;
          handler_fn handle
      | Nexus.Worker ->
          (* Hand off to a background worker thread; the response comes
             back through the background queue (§3.2). *)
          ch t (t.cost.worker_handoff / 2);
          Nexus.submit_worker t.nexus_ (fun wcpu ->
              ignore
                (Sim.Cpu.charge wcpu (Cost_model.scaled t.cost (t.cost.worker_handoff / 2)));
              handle.Req_handle.charge_fn <-
                (fun ns -> ignore (Sim.Cpu.charge wcpu (Cost_model.scaled t.cost ns)));
              handle.Req_handle.enqueue_fn <-
                (fun h resp ->
                  let at = Sim.Cpu.next_free wcpu in
                  Sim.Engine.schedule t.engine at (fun () ->
                      Queue.add
                        (fun () ->
                          ch t (t.cost.worker_handoff / 2);
                          do_enqueue_response t sess slot srv h resp)
                        t.bgq;
                      wake t));
              handler_fn handle))

and do_enqueue_response t sess slot srv handle resp =
  ignore handle;
  srv.handler_running <- false;
  srv.handler_done <- true;
  if Msgbuf.owner resp = Msgbuf.Owned_by_app then Msgbuf.take_for_erpc resp;
  srv.resp_buf <- Some resp;
  send_resp_pkt t sess slot ~pkt_num:0 ~ecn_echo:srv.ecn_pending

(* {2 Client request admission} *)

and start_request t slot args =
  let sess = slot.session in
  slot.req_num <- slot.req_num + t.cfg.req_window;
  slot.busy <- true;
  slot.args <- Some args;
  slot.issue_time <- Sim.Engine.now t.engine;
  let cli = Session.client_info slot ~credits:sess.credit_limit in
  (* Completion is blocked while a retransmitted copy is wheeled, so a new
     request can only start once no rate-limiter reference to the previous
     request's buffers exists. *)
  assert (not cli.retx_in_wheel);
  cli.num_tx <- 0;
  cli.num_rx <- 0;
  cli.max_tx <- 0;
  cli.consec_retx <- 0;
  cli.n_req_pkts <- Msgbuf.num_pkts args.req ~mtu:t.cfg.mtu;
  cli.n_resp_pkts <- -1;
  arm_rto t slot;
  push_txq t slot;
  wake t

let enqueue_request t sess ~req_type ~req ~resp ~cont =
  if sess.role <> Client then invalid_arg "Rpc.enqueue_request: not a client session";
  if Msgbuf.size req > t.cfg.max_msg_size then
    invalid_arg "Rpc.enqueue_request: request exceeds the maximum message size";
  ch t t.cost.enqueue_request;
  Msgbuf.take_for_erpc req;
  Msgbuf.take_for_erpc resp;
  let args = { req_type; req; resp; cont } in
  match sess.state with
  | Error _ | Destroyed ->
      Msgbuf.return_to_app req;
      Msgbuf.return_to_app resp;
      Sim.Engine.schedule_after t.engine 0 (fun () ->
          cont (Stdlib.Error (Err.Session_error "session closed")))
  | Connect_pending -> Queue.add args sess.backlog
  | Connected -> (
      match Session.free_slot sess ~req_window:t.cfg.req_window with
      | Some slot -> start_request t slot args
      | None -> Queue.add args sess.backlog)

(* {2 Sessions and session management} *)

let num_sessions t = t.n_sessions

(* Armed RTO timers across all sessions. The chaos harness checks this is
   zero after quiesce: any armed timer on a completed/failed request is a
   leak. *)
let armed_rto_count t =
  Array.fold_left
    (fun acc s ->
      match s with
      | None -> acc
      | Some sess ->
          Array.fold_left
            (fun acc slot ->
              match slot with
              | Some { rto = Some timer; _ } when Sim.Timer.is_armed timer -> acc + 1
              | _ -> acc)
            acc sess.slots)
    0 t.sessions

let add_session t sess =
  let sn = sess.sn in
  if sn >= Array.length t.sessions then begin
    let cap = max 8 (max (2 * Array.length t.sessions) (sn + 1)) in
    let grown = Array.make cap None in
    Array.blit t.sessions 0 grown 0 (Array.length t.sessions);
    t.sessions <- grown
  end;
  t.sessions.(sn) <- Some sess;
  t.n_sessions <- t.n_sessions + 1

let check_session_budget t =
  (* Credits per session must never exceed RQ descriptors (§4.3.1). *)
  let rq = (Nic.config t.nic_).rq_size in
  if (t.n_sessions + 1) * t.cfg.session_credits > rq then
    invalid_arg
      (Printf.sprintf
         "Rpc.create_session: session limit reached (%d sessions x %d credits vs RQ size %d)"
         (t.n_sessions + 1) t.cfg.session_credits rq)

let fresh_sn t =
  let rec go i = if i < Array.length t.sessions && t.sessions.(i) <> None then go (i + 1) else i in
  go 0

let make_cc t ~sn =
  if t.cfg.opts.congestion_control then
    Some
      (Cc.create ~phase:((t.host_ * 7) + sn) t.cfg.cc
         ~link_gbps:(Fabric.cluster (Nexus.fabric t.nexus_)).link_gbps)
  else None

let create_session t ~remote_host ~remote_rpc_id ?(on_connect = fun _ -> ()) () =
  check_session_budget t;
  let sn = fresh_sn t in
  let sess =
    Session.create ~sn ~role:Client ~remote_host ~remote_rpc_id
      ~credits:t.cfg.session_credits ~req_window:t.cfg.req_window
  in
  sess.cc <- make_cc t ~sn;
  sess.connect_cb <- on_connect;
  add_session t sess;
  Fabric.send_sm
    (Nexus.fabric t.nexus_)
    ~dst_host:remote_host ~dst_rpc:remote_rpc_id
    (Sm.Connect_req
       { client_host = t.host_; client_rpc = t.rpc_id; client_sn = sn; credits = t.cfg.session_credits });
  sess

let accept_session t ~client_host ~client_rpc ~client_sn =
  let sn = fresh_sn t in
  let sess =
    Session.create ~sn ~role:Server ~remote_host:client_host ~remote_rpc_id:client_rpc
      ~credits:t.cfg.session_credits ~req_window:t.cfg.req_window
  in
  sess.remote_sn <- client_sn;
  sess.state <- Connected;
  add_session t sess;
  sn

let handle_sm t msg =
  match msg with
  | Sm.Connect_req { client_host; client_rpc; client_sn; credits = _ } ->
      let result =
        try Ok (check_session_budget t; accept_session t ~client_host ~client_rpc ~client_sn)
        with Invalid_argument e -> Error e
      in
      Fabric.send_sm (Nexus.fabric t.nexus_) ~dst_host:client_host ~dst_rpc:client_rpc
        (Sm.Connect_resp { client_sn; result })
  | Sm.Connect_resp { client_sn; result } -> (
      match t.sessions.(client_sn) with
      | None -> ()
      | Some sess -> (
          match result with
          | Ok server_sn ->
              sess.remote_sn <- server_sn;
              sess.state <- Connected;
              sess.connect_cb (Ok ());
              (* Admit requests enqueued while connecting. *)
              let continue = ref true in
              while !continue && not (Queue.is_empty sess.backlog) do
                match Session.free_slot sess ~req_window:t.cfg.req_window with
                | Some slot -> start_request t slot (Queue.take sess.backlog)
                | None -> continue := false
              done
          | Error e ->
              sess.state <- Error e;
              sess.connect_cb (Stdlib.Error (Err.Session_error e));
              fail_pending_requests t sess (Err.Session_error e)))
  | Sm.Disconnect { server_sn; client_sn } -> (
      match if server_sn < Array.length t.sessions then t.sessions.(server_sn) else None with
      | Some sess when sess.role = Server ->
          sess.state <- Destroyed;
          t.sessions.(server_sn) <- None;
          t.n_sessions <- t.n_sessions - 1;
          Fabric.send_sm (Nexus.fabric t.nexus_) ~dst_host:sess.remote_host
            ~dst_rpc:sess.remote_rpc_id
            (Sm.Disconnect_ack { client_sn })
      | _ -> ())
  | Sm.Disconnect_ack { client_sn } -> (
      match if client_sn < Array.length t.sessions then t.sessions.(client_sn) else None with
      | Some sess when sess.role = Client ->
          sess.state <- Destroyed;
          t.sessions.(client_sn) <- None;
          t.n_sessions <- t.n_sessions - 1
      | _ -> ())

(* Node-failure handling (Appendix B): flush the TX DMA queue, then fail
   pending requests of sessions to the dead host with error codes. *)
let handle_peer_failure t failed_host =
  let touched = ref false in
  Array.iter
    (fun s ->
      match s with
      | Some sess when sess.remote_host = failed_host && sess.state <> Destroyed ->
          if not !touched then begin
            touched := true;
            ch t (Nic.flush_time_ns t.nic_)
          end;
          sess.state <- Error "peer failed";
          if sess.role = Client then fail_pending_requests t sess Err.Server_failure
      | _ -> ())
    t.sessions

(* Local crash (crash-with-restart): the process dies, losing every
   session, queue and in-flight request. Continuations of lost requests are
   failed rather than leaked so callers observe each request exactly once.
   A restarted host keeps its handler registry (a restarted process would
   re-register) but comes back with no sessions: peers retransmitting into
   it get silence and recover via their own bounded-retransmission reset. *)
let handle_local_crash t =
  Array.iter
    (fun s ->
      match s with
      | Some sess when sess.state <> Destroyed ->
          sess.state <- Error "local host crashed";
          if sess.role = Client then
            fail_pending_requests t sess (Err.Session_error "local host crashed")
      | _ -> ())
    t.sessions;
  Array.fill t.sessions 0 (Array.length t.sessions) None;
  t.n_sessions <- 0;
  Queue.clear t.txq;
  Queue.clear t.bgq;
  Queue.clear t.retxq;
  t.wheel <- None;
  Nic.clear_rx t.nic_

let destroy_session t sess =
  if sess.role <> Client then invalid_arg "Rpc.destroy_session: not a client session";
  (match sess.state with
  | Destroyed -> invalid_arg "Rpc.destroy_session: already destroyed"
  | _ -> ());
  let pending =
    Array.exists (function Some { busy = true; _ } -> true | _ -> false) sess.slots
    || not (Queue.is_empty sess.backlog)
  in
  if pending then invalid_arg "Rpc.destroy_session: session has pending requests";
  Fabric.send_sm (Nexus.fabric t.nexus_) ~dst_host:sess.remote_host
    ~dst_rpc:sess.remote_rpc_id
    (Sm.Disconnect { server_sn = sess.remote_sn; client_sn = sess.sn })

let create nexus_ ~rpc_id =
  let fabric = Nexus.fabric nexus_ in
  let engine = Fabric.engine fabric in
  let host_ = Nexus.host nexus_ in
  let cfg = Fabric.config fabric in
  let cluster = Fabric.cluster fabric in
  let nic_cfg =
    { cluster.nic_config with multi_packet_rq = cfg.opts.multi_packet_rq }
  in
  let t =
    {
      nexus_;
      rpc_id;
      host_;
      engine;
      cfg;
      cost = Fabric.cost fabric;
      cpu_ = Sim.Cpu.create engine ~name:(Printf.sprintf "h%d-rpc%d" host_ rpc_id);
      nic_ = Nic.create engine (Fabric.net fabric) ~host:host_ nic_cfg;
      sessions = Array.make 4 None;
      n_sessions = 0;
      txq = Queue.create ();
      bgq = Queue.create ();
      retxq = Queue.create ();
      wheel = None;
      loop_scheduled = false;
      batch_ts = Sim.Time.zero;
      st_rx_pkts = 0;
      st_tx_pkts = 0;
      st_retransmits = 0;
      st_completed = 0;
      st_handled = 0;
      st_wheel_inserts = 0;
      st_rx_corrupt = 0;
      st_retx_warnings = 0;
      st_session_resets = 0;
      rtt_probe = None;
    }
  in
  Nexus.register_rx nexus_ ~rpc_id ~rx:(fun pkt -> Nic.receive t.nic_ pkt);
  Nic.set_rx_notify t.nic_ (fun () -> wake t);
  Fabric.register_sm fabric ~host:host_ ~rpc_id (fun msg ->
      if not (dead t) then handle_sm t msg);
  Fabric.on_host_failure fabric (fun failed ->
      if (not (dead t)) && failed <> host_ then handle_peer_failure t failed);
  Fabric.on_host_killed fabric (fun killed ->
      if killed = host_ then handle_local_crash t);
  t

let set_rtt_probe t probe = t.rtt_probe <- Some probe
