(** Intra-host shared-memory transport (MemRPC-style).

    The third {!Transport.Iface.S} implementation: co-located endpoints
    exchange packets through fixed-slot SPSC message rings over the
    memory interconnect — no NIC, no wire serialization, no switch
    traversal. Each endpoint is a *mux* wrapping the configured wire
    transport: packets to co-located destinations take the ring path,
    everything else the wire, so one Rpc serves mixed local/remote
    session sets with a single transport handle.

    Two handoff disciplines are modeled: *serialize* (copy the payload
    into the ring slot, charged per byte) and *share* (pointer-passing
    zero-copy at a flat per-descriptor cost, plus seal-on-send /
    unseal-on-receive guards and an ownership-transfer check — a sender
    mutating an in-flight shared buffer is detected deterministically
    and the packet delivered marked corrupted). [Auto] picks per message
    whichever is modeled cheaper, so the serialize-vs-share crossover
    emerges from the cost model. *)

(** Handoff discipline for the ring path. *)
type mode = Serialize | Share | Auto

(** Modeled CPU charges, pre-scaled by the owner's cost model
    (see {!Erpc.Cost_model.shm_costs}). *)
type costs = {
  serialize_ns : int -> int;
      (** claim + publish a slot and copy n payload bytes into it *)
  share_tx_ns : int;  (** claim + publish a pointer descriptor + seal *)
  share_rx_ns : int;  (** unseal + ownership-transfer check *)
  ring_post_ns : int;  (** re-arm one consumed ring slot *)
}

(** What the ring path needs to know about a packet: destination Rpc id
    and the payload slice (for copy/seal). *)
type view = { dst_rpc : int; data : bytes; off : int; len : int }

(** Injected by the fabric — this library cannot see eRPC's packet body
    type. [view] returns [None] for bodies the ring path cannot carry
    (those fall back to the wire); [set_payload] retargets the payload
    at a serialized private copy (offset 0, same length). *)
type hooks = {
  view : Netsim.Packet.t -> view option;
  set_payload : Netsim.Packet.t -> bytes -> unit;
}

(** One endpoint's ring state; also the [Impl.t] packed into the
    transport handle. Exposed for {!stats}. *)
type endpoint

(** The per-fabric shared-memory segment directory: maps
    [(host, rpc_id)] to the owning endpoint's rings. *)
type hub

val create_hub : hooks:hooks -> unit -> hub

(** Install the liveness gate: ring deliveries into a host for which it
    returns [false] vanish, like network deliveries into a crashed
    process. *)
val set_alive : hub -> (int -> bool) -> unit

(** Ring-path counters (wire-path counters live on the inner transport). *)
type stats = {
  shm_tx : int;
  shm_rx : int;
  shared_tx : int;  (** messages handed off by pointer *)
  serialized_tx : int;  (** messages copied into the ring *)
  guard_faults : int;  (** ownership-transfer violations detected *)
  ring_stalls : int;  (** sends that found the destination ring full *)
}

val stats : endpoint -> stats

(** [create engine ~hub ~host ~rpc_id ~inner ~colocated ~charge ~mode
    ~slots ~hop_ns ~costs ()] registers the endpoint's rings in [hub]
    and returns the endpoint plus its packed transport. [colocated]
    answers per destination host; [charge] books sender-side CPU work
    (already scaled) on the owning dispatch thread; [slots] is the ring
    capacity before senders stall; [hop_ns] the interconnect hop. *)
val create :
  Sim.Engine.t ->
  hub:hub ->
  host:int ->
  rpc_id:int ->
  inner:Transport.Iface.t ->
  colocated:(int -> bool) ->
  charge:(int -> unit) ->
  mode:mode ->
  slots:int ->
  hop_ns:int ->
  costs:costs ->
  unit ->
  endpoint * Transport.Iface.t
