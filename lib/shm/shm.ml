(* Intra-host shared-memory transport (MemRPC-style).

   Co-located endpoints exchange packets through a pair of fixed-slot SPSC
   message rings per direction instead of the NIC: no wire serialization,
   no switch traversal, one cache-coherent interconnect hop. Two handoff
   disciplines are modeled per message:

   - the *serialize* path copies the payload into the ring slot (charged
     per byte like any memcpy), after which the sender may do anything
     with its buffer — the receiver owns a private copy;
   - the *share* path passes a pointer descriptor (flat per-descriptor
     cost) but pays the safety charges shared memory demands: the sender
     seals the buffer on send (content guard), the receiver unseals and
     runs an ownership-transfer check on receive. A sender that mutates
     an in-flight shared buffer is detected deterministically at unseal
     time: the packet is delivered marked corrupted, so the wire
     protocol's checksum-drop/retransmission machinery recovers exactly
     as it would from a damaged frame.

   The transport is a *mux*: each endpoint wraps the configured wire
   transport and routes per packet — co-located destinations take the
   ring path, everything else the wire — so one Rpc endpoint serves mixed
   local/remote session sets. Geometry (MTU, RQ size) is the inner
   transport's; the ring path never drops (a full destination ring
   backpressures the sender with stall latency instead).

   Layering: this library sits beside the other transports and cannot see
   eRPC's packet body type, so the fabric injects [hooks] for the two
   things the ring path must do with a packet — find the destination Rpc
   id + payload slice, and retarget the payload at a serialized copy. *)

type mode = Serialize | Share | Auto

type costs = {
  serialize_ns : int -> int;
      (* claim + publish a slot and copy n payload bytes into it *)
  share_tx_ns : int;  (* claim + publish a pointer descriptor + seal *)
  share_rx_ns : int;  (* unseal + ownership-transfer check *)
  ring_post_ns : int;  (* re-arm one consumed ring slot *)
}

type view = { dst_rpc : int; data : bytes; off : int; len : int }

type hooks = {
  view : Netsim.Packet.t -> view option;
      (* [None] for packet bodies the ring path cannot carry *)
  set_payload : Netsim.Packet.t -> bytes -> unit;
      (* retarget the payload at a private copy (offset 0, same length) *)
}

(* A handoff in flight between the sender's publish and the receiver's
   poll: the descriptor as published to the peer ring. *)
type inflight = { fly_pkt : Netsim.Packet.t; fly_seal : int; fly_shared : bool }

type endpoint = {
  engine : Sim.Engine.t;
  hub : hub;
  host : int;
  inner : Transport.Iface.t;
  colocated : int -> bool;
  charge : int -> unit;  (* sender-side CPU work, owning dispatch thread *)
  mode : mode;
  slots : int;
  hop_ns : int;
  costs : costs;
  rx_ring : Netsim.Packet.t Sim.Ring.t;
  rx_fly : inflight Sim.Ring.t;
  mutable rx_done : unit -> unit;
  mutable tx_done : unit -> unit;
  mutable rx_notify : unit -> unit;
  mutable rx_last_delivery : Sim.Time.t;
  mutable tx_last_done : Sim.Time.t;
  mutable shm_tx_pending : int;
  (* rx_burst provenance, so replenish re-arms the right device *)
  mutable pending_inner_rx : int;
  mutable pending_shm_rx : int;
  mutable shm_tx_packets : int;
  mutable shm_rx_packets : int;
  mutable shared_tx : int;
  mutable serialized_tx : int;
  mutable guard_faults : int;
  mutable ring_stalls : int;
  trace : Obs.Trace.t;
  pid : int;
  tid : int;  (* the host's per-endpoint "shm" interconnect track *)
}

and hub = {
  hooks : hooks;
  endpoints : (int * int, endpoint) Hashtbl.t;  (* (host, rpc_id) -> ring *)
  mutable alive : int -> bool;
}

(* {2 Hub} *)

let create_hub ~hooks () =
  { hooks; endpoints = Hashtbl.create 16; alive = (fun _ -> true) }

let set_alive hub f = hub.alive <- f

(* {2 Seal guard}

   FNV-1a over the payload slice, truncated to a nonnegative int. The
   seal is recorded when the descriptor is published and re-derived at
   unseal time; any in-flight mutation of a shared buffer changes it. *)

(* The 64-bit FNV offset basis truncated to OCaml's 63-bit int. *)
let fnv_offset = 0x4bf29ce484222325
let fnv_prime = 0x100000001b3

let seal_of { data; off; len; _ } =
  let h = ref fnv_offset in
  for i = off to off + len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get data i)) * fnv_prime
  done;
  !h land max_int

(* {2 The ring path} *)

let trace_shm t name pkt =
  if Obs.Trace.enabled t.trace then
    Obs.Trace.instant t.trace ~ts:(Sim.Engine.now t.engine) ~cat:"shm" ~name
      ~pid:t.pid ~tid:t.tid
      [ ("id", Obs.Trace.I pkt.Netsim.Packet.trace_id) ]

(* Receiver-side completion: verify the seal (share path), then make the
   packet visible to the receiver's poll loop. Deliveries into a crashed
   process vanish, exactly like network deliveries do. *)
let rx_complete t =
  let f = Sim.Ring.take t.rx_fly in
  let pkt = f.fly_pkt in
  if not (t.hub.alive t.host) then Netsim.Packet.free pkt
  else begin
    (if f.fly_shared then
       match t.hub.hooks.view pkt with
       | Some v ->
           if seal_of v <> f.fly_seal then begin
             (* Ownership-transfer violation: the sender mutated the
                shared buffer after sealing it. Surfaced exactly like a
                checksum mismatch, so recovery is the protocol's normal
                corrupt-drop + retransmission. *)
             t.guard_faults <- t.guard_faults + 1;
             pkt.Netsim.Packet.corrupted <- true
           end
       | None -> ());
    t.shm_rx_packets <- t.shm_rx_packets + 1;
    trace_shm t "rx" pkt;
    let was_empty = Sim.Ring.is_empty t.rx_ring in
    Sim.Ring.push t.rx_ring pkt;
    if was_empty then t.rx_notify ()
  end

let serialize_tx t pkt (v : view) =
  t.serialized_tx <- t.serialized_tx + 1;
  if v.len > 0 then t.hub.hooks.set_payload pkt (Bytes.sub v.data v.off v.len)

let shm_tx t dst pkt (v : view) =
  let share =
    v.len > 0
    &&
    match t.mode with
    | Serialize -> false
    | Share -> true
    | Auto ->
        t.costs.share_tx_ns + t.costs.share_rx_ns <= t.costs.serialize_ns v.len
  in
  let tx_work, rx_guard =
    if share then (t.costs.share_tx_ns, t.costs.share_rx_ns)
    else (t.costs.serialize_ns v.len, 0)
  in
  t.charge tx_work;
  let seal =
    if share then begin
      t.shared_tx <- t.shared_tx + 1;
      seal_of v
    end
    else begin
      serialize_tx t pkt v;
      0
    end
  in
  t.shm_tx_packets <- t.shm_tx_packets + 1;
  t.shm_tx_pending <- t.shm_tx_pending + 1;
  trace_shm t "tx" pkt;
  (* Backpressure, not loss: while the destination ring is full the slot
     claim spins on the consumer, one interconnect hop per excess
     occupied slot. *)
  let backlog = Sim.Ring.length dst.rx_ring + Sim.Ring.length dst.rx_fly in
  let stall =
    if backlog >= dst.slots then (backlog - dst.slots + 1) * t.hop_ns else 0
  in
  if stall > 0 then t.ring_stalls <- t.ring_stalls + 1;
  let now = Sim.Engine.now t.engine in
  (* The sender's hand leaves the message once the copy/seal work (and
     any slot-claim spin) retires. *)
  let done_at = Sim.Time.add now (tx_work + stall) in
  if done_at > t.tx_last_done then t.tx_last_done <- done_at;
  Sim.Engine.schedule t.engine done_at t.tx_done;
  (* The message becomes visible after the interconnect hop plus the
     receiver-side guard work; delivery is FIFO per receiver across all
     co-located senders. *)
  let at =
    max (Sim.Time.add done_at (t.hop_ns + rx_guard)) dst.rx_last_delivery
  in
  dst.rx_last_delivery <- at;
  Sim.Ring.push dst.rx_fly { fly_pkt = pkt; fly_seal = seal; fly_shared = share };
  Sim.Engine.schedule t.engine at dst.rx_done

(* {2 Transport.Iface implementation} *)

module Impl = struct
  type t = endpoint

  let kind = "shm"
  let lossless t = Transport.Iface.lossless t.inner
  let max_data_per_pkt t = Transport.Iface.max_data_per_pkt t.inner
  let rq_size t = Transport.Iface.rq_size t.inner

  let tx_burst t pkt =
    if t.colocated pkt.Netsim.Packet.dst then
      match t.hub.hooks.view pkt with
      | Some v -> (
          match
            Hashtbl.find_opt t.hub.endpoints (pkt.Netsim.Packet.dst, v.dst_rpc)
          with
          | Some dst -> shm_tx t dst pkt v
          | None ->
              (* Co-located, but the peer never mapped a ring (e.g. it
                 runs with shm disabled): fall back to the wire. *)
              Transport.Iface.tx_burst t.inner pkt)
      | None -> Transport.Iface.tx_burst t.inner pkt
    else Transport.Iface.tx_burst t.inner pkt

  let tx_pending t = t.shm_tx_pending + Transport.Iface.tx_pending t.inner

  let flush_time_ns t =
    let now = Sim.Engine.now t.engine in
    let shm_wait =
      if t.shm_tx_pending > 0 then max 0 (Sim.Time.sub t.tx_last_done now) else 0
    in
    max shm_wait (Transport.Iface.flush_time_ns t.inner)

  let rx_burst t ~max f =
    let n = ref 0 in
    while !n < max && not (Sim.Ring.is_empty t.rx_ring) do
      incr n;
      t.pending_shm_rx <- t.pending_shm_rx + 1;
      f (Sim.Ring.take t.rx_ring)
    done;
    if !n < max then begin
      let m = Transport.Iface.rx_burst t.inner ~max:(max - !n) f in
      t.pending_inner_rx <- t.pending_inner_rx + m;
      n := !n + m
    end;
    !n

  let rx_ring_depth t =
    Sim.Ring.length t.rx_ring + Transport.Iface.rx_ring_depth t.inner

  let set_rx_notify t f =
    t.rx_notify <- f;
    Transport.Iface.set_rx_notify t.inner f

  let replenish_rx t n =
    assert (n >= 0);
    let inner_n = min n t.pending_inner_rx in
    t.pending_inner_rx <- t.pending_inner_rx - inner_n;
    let shm_n = min (n - inner_n) t.pending_shm_rx in
    t.pending_shm_rx <- t.pending_shm_rx - shm_n;
    Transport.Iface.replenish_rx t.inner inner_n + (shm_n * t.costs.ring_post_ns)

  (* Network ingress is always the wire device; ring deliveries bypass it. *)
  let receive t pkt = Transport.Iface.receive t.inner pkt

  let reset_rx t =
    while not (Sim.Ring.is_empty t.rx_ring) do
      Netsim.Packet.free (Sim.Ring.take t.rx_ring)
    done;
    t.pending_inner_rx <- 0;
    t.pending_shm_rx <- 0;
    Transport.Iface.reset_rx t.inner

  let rx_packets t = t.shm_rx_packets + Transport.Iface.rx_packets t.inner
  let tx_packets t = t.shm_tx_packets + Transport.Iface.tx_packets t.inner

  (* The ring path never drops; only the wire device can. *)
  let rx_dropped t = Transport.Iface.rx_dropped t.inner
end

type stats = {
  shm_tx : int;
  shm_rx : int;
  shared_tx : int;
  serialized_tx : int;
  guard_faults : int;
  ring_stalls : int;
}

let stats (t : endpoint) =
  {
    shm_tx = t.shm_tx_packets;
    shm_rx = t.shm_rx_packets;
    shared_tx = t.shared_tx;
    serialized_tx = t.serialized_tx;
    guard_faults = t.guard_faults;
    ring_stalls = t.ring_stalls;
  }

let create engine ~hub ~host ~rpc_id ~inner ~colocated ~charge ~mode ~slots
    ~hop_ns ~costs () =
  let trace = Sim.Engine.trace engine in
  let pid = Obs.Trace.host_pid host in
  let tid = Obs.Trace.register_track trace ~pid (Printf.sprintf "shm%d" rpc_id) in
  let t =
    {
      engine;
      hub;
      host;
      inner;
      colocated;
      charge;
      mode;
      slots = max 2 slots;
      hop_ns;
      costs;
      rx_ring = Sim.Ring.create ~capacity:64 ~dummy:Netsim.Packet.nil ();
      rx_fly =
        Sim.Ring.create ~capacity:64
          ~dummy:{ fly_pkt = Netsim.Packet.nil; fly_seal = 0; fly_shared = false }
          ();
      rx_done = (fun () -> ());
      tx_done = (fun () -> ());
      rx_notify = (fun () -> ());
      rx_last_delivery = Sim.Time.zero;
      tx_last_done = Sim.Time.zero;
      shm_tx_pending = 0;
      pending_inner_rx = 0;
      pending_shm_rx = 0;
      shm_tx_packets = 0;
      shm_rx_packets = 0;
      shared_tx = 0;
      serialized_tx = 0;
      guard_faults = 0;
      ring_stalls = 0;
      trace;
      pid;
      tid;
    }
  in
  t.rx_done <- (fun () -> rx_complete t);
  t.tx_done <- (fun () -> t.shm_tx_pending <- t.shm_tx_pending - 1);
  (* Restart-friendly: a re-created endpoint at the same address simply
     remaps the ring (the old one died with its process). *)
  Hashtbl.replace hub.endpoints (host, rpc_id) t;
  (t, Transport.Iface.T ((module Impl : Transport.Iface.S with type t = Impl.t), t))
