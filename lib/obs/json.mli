(** Minimal JSON builder and validator (no external dependency).

    The builder renders deterministically: object fields in the order
    given, floats via ["%.6g"]. The validator is a strict recursive-descent
    check used by tests and the [erpc_sim trace] smoke step. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string

val escape : string -> string
(** JSON string-escape (no surrounding quotes). *)

val escape_to : Buffer.t -> string -> unit

val float_repr : float -> string
(** Deterministic JSON number rendering of a float. *)

val validate : string -> bool
(** [validate s] is true iff [s] is one complete, well-formed JSON value
    (surrounding whitespace allowed). *)
