(** Pull-based metrics registry.

    Components register named, labeled sources at creation time — counters
    and gauges as closures over their own state, histograms as shared
    {!Stats.Hist.t} references. Nothing is sampled until {!snapshot}, so
    registration costs the hot path nothing. Snapshots are sorted by
    (name, labels), making reports deterministic. *)

type t

val create : unit -> t

val counter : t -> name:string -> ?labels:(string * string) list -> (unit -> int) -> unit
val gauge : t -> name:string -> ?labels:(string * string) list -> (unit -> float) -> unit
val histogram : t -> name:string -> ?labels:(string * string) list -> Stats.Hist.t -> unit
(** Registering an existing (name, labels) pair replaces the old source. *)

type sampled =
  | Sample_counter of int
  | Sample_gauge of float
  | Sample_hist of { count : int; mean : float; p50 : int; p99 : int; max : int }

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : sampled;
}

val snapshot : t -> sample list
(** Sample every source, sorted by (name, labels). *)

val find : t -> name:string -> labels:(string * string) list -> sample option

val fold_counters : t -> name:string -> ('a -> (string * string) list -> int -> 'a) -> 'a -> 'a
(** Fold over the current values of every counter registered under [name]. *)

val max_gauge : t -> name:string -> float
(** Maximum current value over all gauges registered under [name]
    (0 if none). *)

val pp : Format.formatter -> t -> unit
(** One line per sample: [name{k=v,...} value]. *)

val to_json : t -> Json.t
