(* RPC latency anatomy: decompose sampled end-to-end request latencies into
   Table-3-style components by post-processing a trace.

   Milestones joined per request (client pid/tid, session sn, req number):

     T0 req_start        client sslot begins the request
     N1 nic tx (req)     client posts the request packet to the NIC
     A1 net enq (req)    packet admitted to the first fabric port
     B1 net deliver      packet handed to the server host
     R1 nic rx (req)     server NIC fills the RX descriptor
     N2 nic tx (resp)    server posts the response packet
     A2/B2/R2            same stations for the response
     T6 req_done         client completes the request

   Each direction is one *leg*. A leg that crossed the wire uses the
   N/A/B/R stations above; an intra-host leg over the shared-memory
   transport has only two stations — "shm tx" (descriptor published) and
   "shm rx" (packet visible to the receiver's poll) — and its entire
   transit time is the ring/guard component, with NIC/wire/switch exactly
   zero. Mixed requests (one leg wired, one over shm) join fine; each leg
   picks whichever milestone set its packet produced.

   Components (all in ns; stations per leg as above):
     req_ser    = typed request encode on the client (codec span before leg 1)
     client_tx  = leg1.start - T0 - pacing - req_ser  remaining client sw
     pacing     = wheel fire - insert pacing-wheel residency (0 if bypassed)
     nic        = (A-N)+(R-B) summed over wired legs   NIC tx/rx latency
     wire       = predicted serialization + propagation + switch latency
     switch_q   = (B-A) - wire summed over wired legs  fabric queueing
     ring       = shm rx - shm tx summed over shm legs (hop + guards + FIFO)
     req_deser  = typed request decode on the server (codec span in leg gap)
     resp_ser   = typed response encode on the server (codec span in leg gap)
     server     = leg2.start - leg1.end - req_deser - resp_ser
     resp_deser = typed response decode on the client (codec span after leg 2)
     client_rx  = T6 - leg2.end - resp_deser          remaining client software

   The sum telescopes exactly to T6 - T0: every component is a difference
   of adjacent milestones except wire/switch_q (which split each wired
   in-fabric interval without remainder) and the codec terms (which are
   carved out of the enclosing software interval and subtracted from it).
   A shm leg contributes exactly leg.end - leg.start as ring, so the
   invariant is transport-independent. Untyped workloads have no codec
   spans; those terms are zero. *)

type breakdown = {
  host : int;  (** client host *)
  sn : int;  (** client session number *)
  req : int;  (** request number *)
  total_ns : int;
  req_ser_ns : int;
  client_tx_ns : int;
  pacing_ns : int;
  nic_ns : int;
  wire_ns : int;
  switch_ns : int;
  ring_ns : int;
  req_deser_ns : int;
  resp_ser_ns : int;
  server_ns : int;
  resp_deser_ns : int;
  client_rx_ns : int;
}

(* Packet-kind codes used in "pkt info" events (see Erpc.Proto). *)
let kind_req = 0
let kind_resp = 1

let ai k args =
  match List.assoc_opt k args with Some (Trace.I n) -> Some n | _ -> None

let aie k args = match ai k args with Some n -> n | None -> -1

type pkt_info = { p_ts : int; p_id : int; p_size : int; p_dst : int }

(* A "codec" span ("ser"/"deser" Complete event) available for attribution
   to at most one request. *)
type span = { s_ts : int; s_dur : int; mutable s_used : bool }

(* Per-direction transit: either a wired leg (NIC/fabric stations) or an
   intra-host shared-memory leg (ring stations); components sum to
   [l_end - l_start] either way. *)
type leg = {
  l_start : int;
  l_end : int;
  l_nic : int;
  l_wire : int;
  l_switch : int;
  l_ring : int;
}

let analyze ~wire_ns evs =
  (* Milestone tables keyed by trace packet id. *)
  let nic_tx = Hashtbl.create 256 in
  let nic_rx = Hashtbl.create 256 in
  let net_enq = Hashtbl.create 256 in
  let net_del = Hashtbl.create 256 in
  let shm_tx = Hashtbl.create 64 in
  let shm_rx = Hashtbl.create 64 in
  let wh_ins = Hashtbl.create 64 in
  let wh_fire = Hashtbl.create 64 in
  let first tbl id ts = if not (Hashtbl.mem tbl id) then Hashtbl.add tbl id ts in
  (* Request packets keyed (pid, tid, sn, req); responses keyed
     (dst host, dest session, req). Multi-packet requests/responses are
     excluded — a single latency can't be attributed to one wire crossing. *)
  let req_pkt = Hashtbl.create 256 in
  let resp_pkt = Hashtbl.create 256 in
  let multi = Hashtbl.create 16 in
  let starts = Hashtbl.create 256 in
  let dones = Hashtbl.create 256 in
  (* Codec spans per (pid, name), in trace order (ascending ts). *)
  let codec = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.ev) ->
      match (e.cat, e.name) with
      | "nic", "tx" -> first nic_tx (aie "id" e.args) e.ts
      | "nic", "rx" -> first nic_rx (aie "id" e.args) e.ts
      | "shm", "tx" -> first shm_tx (aie "id" e.args) e.ts
      | "shm", "rx" -> first shm_rx (aie "id" e.args) e.ts
      | "net", "enq" -> first net_enq (aie "id" e.args) e.ts
      | "net", "deliver" -> first net_del (aie "id" e.args) e.ts
      | "wheel", "insert" -> first wh_ins (aie "id" e.args) e.ts
      | "wheel", "fire" -> first wh_fire (aie "id" e.args) e.ts
      | "codec", (("ser" | "deser") as name) ->
          let dur = match e.phase with Trace.Complete d -> d | _ -> 0 in
          let key = (e.pid, name) in
          let prev = try Hashtbl.find codec key with Not_found -> [] in
          Hashtbl.replace codec key ({ s_ts = e.ts; s_dur = dur; s_used = false } :: prev)
      | "pkt", "info" ->
          let id = aie "id" e.args
          and kind = aie "kind" e.args
          and num = aie "num" e.args
          and req = aie "req" e.args
          and dst = aie "dst" e.args
          and ssn = aie "ssn" e.args
          and dsn = aie "dsn" e.args
          and size = aie "size" e.args in
          let info = { p_ts = e.ts; p_id = id; p_size = size; p_dst = dst } in
          if kind = kind_req then
            if num = 0 then first req_pkt (e.pid, e.tid, ssn, req) info
            else Hashtbl.replace multi (`Req (e.pid, e.tid, ssn, req)) ()
          else if kind = kind_resp then
            if num = 0 then first resp_pkt (dst, dsn, req) info
            else Hashtbl.replace multi (`Resp (dst, dsn, req)) ()
      | "sslot", "req_start" ->
          first starts (e.pid, e.tid, aie "sn" e.args, aie "req" e.args) e.ts
      | "sslot", "req_done" ->
          first dones (e.pid, e.tid, aie "sn" e.args, aie "req" e.args) e.ts
      | _ -> ())
    evs;
  (* Spans were accumulated newest-first; restore trace order. *)
  let codec_sorted = Hashtbl.create (max 1 (Hashtbl.length codec)) in
  Hashtbl.iter
    (fun key spans -> Hashtbl.replace codec_sorted key (List.rev spans))
    codec;
  (* Claim the latest still-unclaimed span of [name] on [pid] lying wholly
     inside [lo, hi]. Requests are processed in descending start order, so
     latest-first claiming pairs spans with the request whose window they
     belong to even when windows of back-to-back requests overlap. *)
  let claim ~pid ~name ~lo ~hi =
    match Hashtbl.find_opt codec_sorted (pid, name) with
    | None -> 0
    | Some spans ->
        let best =
          List.fold_left
            (fun acc s ->
              if (not s.s_used) && s.s_ts >= lo && s.s_ts + s.s_dur <= hi then Some s
              else acc)
            None spans
        in
        (match best with
        | Some s ->
            s.s_used <- true;
            s.s_dur
        | None -> 0)
  in
  (* Assemble one leg from whichever milestone set the packet produced:
     the shm pair for an intra-host crossing, the NIC/fabric quartet for
     a wired one. *)
  let leg_of id size =
    match (Hashtbl.find_opt shm_tx id, Hashtbl.find_opt shm_rx id) with
    | Some stx, Some srx ->
        Some
          {
            l_start = stx;
            l_end = srx;
            l_nic = 0;
            l_wire = 0;
            l_switch = 0;
            l_ring = srx - stx;
          }
    | _ -> (
        match
          ( Hashtbl.find_opt nic_tx id,
            Hashtbl.find_opt net_enq id,
            Hashtbl.find_opt net_del id,
            Hashtbl.find_opt nic_rx id )
        with
        | Some n, Some a, Some b, Some r ->
            let wire = wire_ns size in
            Some
              {
                l_start = n;
                l_end = r;
                l_nic = a - n + (r - b);
                l_wire = wire;
                l_switch = b - a - wire;
                l_ring = 0;
              }
        | _ -> None)
  in
  (* First join all milestones; claiming happens in a deterministic pass. *)
  let raw = ref [] in
  Hashtbl.iter
    (fun ((pid, tid, sn, req) as key) t0 ->
      let ( let* ) o f = match o with Some v -> f v | None -> () in
      let* t6 = Hashtbl.find_opt dones key in
      let* rq = Hashtbl.find_opt req_pkt key in
      let host = pid - 1 in
      let* rp = Hashtbl.find_opt resp_pkt (host, sn, req) in
      if
        Hashtbl.mem multi (`Req (pid, tid, sn, req))
        || Hashtbl.mem multi (`Resp (host, sn, req))
      then ()
      else begin
        let* l1 = leg_of rq.p_id rq.p_size in
        let* l2 = leg_of rp.p_id rp.p_size in
        raw := (pid, sn, req, t0, t6, rq, rp, l1, l2) :: !raw
      end)
    starts;
  let raw =
    List.sort
      (fun (p1, s1, r1, t1, _, _, _, _, _) (p2, s2, r2, t2, _, _, _, _, _) ->
        match compare t2 t1 with
        | 0 -> compare (p2, s2, r2) (p1, s1, r1)
        | c -> c)
      !raw
  in
  let out =
    List.map
      (fun (pid, sn, req, t0, t6, rq, _rp, l1, l2) ->
        let host = pid - 1 in
        let pacing =
          match
            (Hashtbl.find_opt wh_ins rq.p_id, Hashtbl.find_opt wh_fire rq.p_id)
          with
          | Some i, Some f -> f - i
          | _ -> 0
        in
        let server_pid = rq.p_dst + 1 in
        let req_ser = claim ~pid ~name:"ser" ~lo:t0 ~hi:l1.l_start in
        let resp_deser = claim ~pid ~name:"deser" ~lo:l2.l_end ~hi:t6 in
        let req_deser =
          claim ~pid:server_pid ~name:"deser" ~lo:l1.l_end ~hi:l2.l_start
        in
        let resp_ser =
          claim ~pid:server_pid ~name:"ser" ~lo:l1.l_end ~hi:l2.l_start
        in
        {
          host;
          sn;
          req;
          total_ns = t6 - t0;
          req_ser_ns = req_ser;
          client_tx_ns = l1.l_start - t0 - pacing - req_ser;
          pacing_ns = pacing;
          nic_ns = l1.l_nic + l2.l_nic;
          wire_ns = l1.l_wire + l2.l_wire;
          switch_ns = l1.l_switch + l2.l_switch;
          ring_ns = l1.l_ring + l2.l_ring;
          req_deser_ns = req_deser;
          resp_ser_ns = resp_ser;
          server_ns = l2.l_start - l1.l_end - req_deser - resp_ser;
          resp_deser_ns = resp_deser;
          client_rx_ns = t6 - l2.l_end - resp_deser;
        })
      raw
  in
  List.sort
    (fun a b ->
      match compare a.host b.host with
      | 0 -> ( match compare a.sn b.sn with 0 -> compare a.req b.req | c -> c)
      | c -> c)
    out

let components b =
  [
    ("req serialize", b.req_ser_ns);
    ("client tx", b.client_tx_ns);
    ("pacing wheel", b.pacing_ns);
    ("NIC", b.nic_ns);
    ("wire", b.wire_ns);
    ("switch queue", b.switch_ns);
    ("ring/guard", b.ring_ns);
    ("req deserialize", b.req_deser_ns);
    ("resp serialize", b.resp_ser_ns);
    ("server", b.server_ns);
    ("resp deserialize", b.resp_deser_ns);
    ("client rx", b.client_rx_ns);
  ]

let sum_components b =
  List.fold_left (fun acc (_, v) -> acc + v) 0 (components b)

let pp_table fmt bds =
  let n = List.length bds in
  if n = 0 then Format.fprintf fmt "(no complete RPCs in trace)@."
  else begin
    let mean f =
      float_of_int (List.fold_left (fun acc b -> acc + f b) 0 bds) /. float_of_int n
    in
    let total = mean (fun b -> b.total_ns) in
    Format.fprintf fmt "Latency anatomy over %d sampled RPCs (mean %.0f ns):@." n total;
    Format.fprintf fmt "  %-16s %10s %7s@." "component" "mean(ns)" "share";
    List.iter
      (fun (label, f) ->
        let m = mean f in
        Format.fprintf fmt "  %-16s %10.1f %6.1f%%@." label m
          (if total > 0. then 100. *. m /. total else 0.))
      [
        ("req serialize", fun b -> b.req_ser_ns);
        ("client tx", fun b -> b.client_tx_ns);
        ("pacing wheel", fun b -> b.pacing_ns);
        ("NIC", fun b -> b.nic_ns);
        ("wire", fun b -> b.wire_ns);
        ("switch queue", fun b -> b.switch_ns);
        ("ring/guard", fun b -> b.ring_ns);
        ("req deserialize", fun b -> b.req_deser_ns);
        ("resp serialize", fun b -> b.resp_ser_ns);
        ("server", fun b -> b.server_ns);
        ("resp deserialize", fun b -> b.resp_deser_ns);
        ("client rx", fun b -> b.client_rx_ns);
      ];
    Format.fprintf fmt "  %-16s %10.1f %6.1f%%@." "total" total 100.
  end

(* {2 Tail attribution} *)

type attribution = {
  samples : int;
  p50_total_ns : int;
  p99_total_ns : int;
  p999_total_ns : int;
  p50_ns : (string * int) list;
  p99_ns : (string * int) list;
  p50_dominant : string;
  p99_dominant : string;
}

let attribute bds =
  match bds with
  | [] -> None
  | _ ->
      let n = List.length bds in
      let totals = Array.of_list (List.map (fun b -> b.total_ns) bds) in
      Array.sort compare totals;
      (* Nearest-rank percentiles over the sorted totals. *)
      let pct p =
        let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
        totals.(max 0 (min (n - 1) (rank - 1)))
      in
      let p50 = pct 50. and p99 = pct 99. and p999 = pct 99.9 in
      let band keep =
        let members = List.filter (fun b -> keep b.total_ns) bds in
        let k = List.length members in
        (* Non-empty by construction: the thresholds are realized totals. *)
        List.map
          (fun (label, _) ->
            let sum =
              List.fold_left
                (fun acc b -> acc + List.assoc label (components b))
                0 members
            in
            (label, sum / k))
          (components (List.hd bds))
      in
      let body = band (fun t -> t <= p50) in
      let tail = band (fun t -> t >= p99) in
      let dominant comps =
        fst
          (List.fold_left
             (fun (bl, bv) (l, v) -> if v > bv then (l, v) else (bl, bv))
             ("", min_int) comps)
      in
      Some
        {
          samples = n;
          p50_total_ns = p50;
          p99_total_ns = p99;
          p999_total_ns = p999;
          p50_ns = body;
          p99_ns = tail;
          p50_dominant = dominant body;
          p99_dominant = dominant tail;
        }

let attribution_to_json a =
  let share total v =
    if total > 0 then float_of_int v /. float_of_int total else 0.
  in
  let p50_sum = List.fold_left (fun acc (_, v) -> acc + v) 0 a.p50_ns in
  let p99_sum = List.fold_left (fun acc (_, v) -> acc + v) 0 a.p99_ns in
  Json.Obj
    [
      ("samples", Json.Int a.samples);
      ("p50_total_ns", Json.Int a.p50_total_ns);
      ("p99_total_ns", Json.Int a.p99_total_ns);
      ("p999_total_ns", Json.Int a.p999_total_ns);
      ("p50_dominant", Json.Str a.p50_dominant);
      ("p99_dominant", Json.Str a.p99_dominant);
      ( "components",
        Json.Arr
          (List.map2
             (fun (label, v50) (label99, v99) ->
               assert (label = label99);
               Json.Obj
                 [
                   ("component", Json.Str label);
                   ("p50_ns", Json.Int v50);
                   ("p99_ns", Json.Int v99);
                   ("p50_share", Json.Float (share p50_sum v50));
                   ("p99_share", Json.Float (share p99_sum v99));
                 ])
             a.p50_ns a.p99_ns) );
    ]
