(* Ring-buffered, sim-time-stamped event trace with a Chrome-trace/Perfetto
   JSON exporter.

   Determinism contract: every recorded field derives from simulation state
   (sim-time timestamps, host ids, sequence numbers), never from wall-clock
   or allocation addresses, so two same-seed runs emit byte-identical
   traces. Hooks are observe-only — recording an event must not schedule
   work or perturb the engine's event order.

   Zero-cost-when-disabled: the shared [disabled] trace has capacity 0 and
   [enabled] is a single field read, so hot-path call sites guard with
   [if Trace.enabled tr then ...] and pay one load+branch when tracing is
   off. *)

type arg = I of int | F of float | S of string

type phase =
  | Instant
  | Complete of int  (** duration in ns *)
  | Counter

type ev = {
  ts : int;  (** sim-time, ns *)
  phase : phase;
  cat : string;
  name : string;
  pid : int;
  tid : int;
  args : (string * arg) list;
}

type t = {
  capacity : int;
  buf : ev array;
  mutable head : int;  (* next write position *)
  mutable len : int;
  mutable dropped : int;
  mutable next_id : int;
  mutable procs : (int * string) list;  (* insertion order *)
  mutable tracks : (int * int * string) list;  (* pid, tid, name; in order *)
  mutable next_tid : (int * int) list;  (* per-pid tid allocator *)
}

let dummy_ev =
  { ts = 0; phase = Instant; cat = ""; name = ""; pid = 0; tid = 0; args = [] }

let create ?(capacity = 1 lsl 20) () =
  {
    capacity;
    buf = (if capacity = 0 then [||] else Array.make capacity dummy_ev);
    head = 0;
    len = 0;
    dropped = 0;
    next_id = 0;
    procs = [];
    tracks = [];
    next_tid = [];
  }

(* The one trace every engine starts with; recording into it is a no-op. *)
let disabled = create ~capacity:0 ()
let enabled t = t.capacity > 0
let length t = t.len
let dropped t = t.dropped

(* Stable per-trace id source, used to stamp packets so NIC/switch/port
   events can be joined back to the protocol-level packet description.
   A no-op 0 on [disabled]: that trace is shared (including across
   domains under Par_sweep), so it must never be mutated. *)
let fresh_id t =
  if t.capacity = 0 then 0
  else begin
    t.next_id <- t.next_id + 1;
    t.next_id
  end

(* Conventional pid layout: the network fabric is process 0, host [h] is
   process [h + 1]. *)
let net_pid = 0
let host_pid h = h + 1

let record t e =
  if t.capacity > 0 then begin
    t.buf.(t.head) <- e;
    t.head <- (t.head + 1) mod t.capacity;
    if t.len < t.capacity then t.len <- t.len + 1
    else t.dropped <- t.dropped + 1
  end

let instant t ~ts ~cat ~name ~pid ~tid args =
  record t { ts; phase = Instant; cat; name; pid; tid; args }

let complete t ~ts ~dur ~cat ~name ~pid ~tid args =
  record t { ts; phase = Complete dur; cat; name; pid; tid; args }

let counter t ~ts ~cat ~name ~pid args =
  record t { ts; phase = Counter; cat; name; pid; tid = 0; args }

(* Registration is a no-op on a disabled trace: [disabled] is a shared
   value, so it must never accumulate state. *)
let register_process t ~pid name =
  if t.capacity > 0 && not (List.mem (pid, name) t.procs) then
    t.procs <-
      (match List.assoc_opt pid t.procs with
      | Some _ ->
          List.map (fun (p, n) -> if p = pid then (p, name) else (p, n)) t.procs
      | None -> t.procs @ [ (pid, name) ])

let register_track t ~pid name =
  if t.capacity = 0 then 0
  else begin
    let tid =
      match List.assoc_opt pid t.next_tid with Some n -> n | None -> 1
    in
    t.next_tid <- (pid, tid + 1) :: List.remove_assoc pid t.next_tid;
    t.tracks <- t.tracks @ [ (pid, tid, name) ];
    tid
  end

let events t =
  let out = ref [] in
  for i = t.len - 1 downto 0 do
    let idx = (t.head - t.len + i + (2 * t.capacity)) mod t.capacity in
    out := t.buf.(idx) :: !out
  done;
  !out

let iter t f =
  for i = 0 to t.len - 1 do
    let idx = (t.head - t.len + i + (2 * t.capacity)) mod t.capacity in
    f t.buf.(idx)
  done

(* {2 Shard merge}

   Deterministic merge of per-partition trace shards (see Sim.Partition):
   a stable sort of the concatenated events by (ts, pid). Each pid's
   stream must live in exactly one shard (hosts are owned by exactly one
   partition) for the result to be independent of how work was
   partitioned: the sorted order is then fully determined by the event
   multiset plus the per-pid subsequences, neither of which depends on
   partition or domain count. Events sharing (ts, pid) keep their
   within-shard order (shards earlier in the list first) — for
   shard-crossing pids like [net_pid] this tiebreak is still deterministic
   for a fixed partitioning, just not partition-count invariant. *)

let merge shards =
  let all =
    Array.of_list (List.concat_map (fun s -> events s) shards)
  in
  (* [Array.stable_sort] keeps concatenation order for equal keys. *)
  Array.stable_sort
    (fun a b -> if a.ts <> b.ts then compare a.ts b.ts else compare a.pid b.pid)
    all;
  let t = create ~capacity:(max 1 (Array.length all)) () in
  t.dropped <- List.fold_left (fun acc s -> acc + s.dropped) 0 shards;
  t.next_id <- List.fold_left (fun acc s -> max acc s.next_id) 0 shards;
  List.iter
    (fun s ->
      List.iter (fun (pid, name) -> register_process t ~pid name) s.procs;
      List.iter
        (fun (pid, tid, name) ->
          if not (List.exists (fun (p, i, _) -> p = pid && i = tid) t.tracks) then
            t.tracks <- t.tracks @ [ (pid, tid, name) ])
        s.tracks)
    shards;
  Array.iter (fun e -> record t e) all;
  t

(* {2 Digest}

   FNV-1a 64 folded over a compact rendering of every retained event. Far
   cheaper than [Digest.string (to_chrome_string t)] on big rings: no
   mega-string, one small reused buffer. *)

let digest t =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  let mix_char c =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 1099511628211L
  in
  let mix_string s = String.iter mix_char s in
  let mix_int n =
    mix_string (string_of_int n);
    mix_char '|'
  in
  let buf = Buffer.create 64 in
  mix_int t.dropped;
  iter t (fun e ->
      mix_int e.ts;
      (match e.phase with
      | Instant -> mix_char 'I'
      | Complete d ->
          mix_char 'X';
          mix_int d
      | Counter -> mix_char 'C');
      mix_string e.cat;
      mix_char '|';
      mix_string e.name;
      mix_char '|';
      mix_int e.pid;
      mix_int e.tid;
      List.iter
        (fun (k, v) ->
          mix_string k;
          mix_char '=';
          Buffer.clear buf;
          (match v with
          | I n -> Buffer.add_string buf (string_of_int n)
          | F f -> Buffer.add_string buf (Json.float_repr f)
          | S s -> Buffer.add_string buf s);
          mix_string (Buffer.contents buf);
          mix_char '|')
        e.args);
  Printf.sprintf "%016Lx" !h

(* The digest of the merged trace: composable over shards, and byte-equal
   across runs iff every shard's retained events (and summed eviction
   counts) are. *)
let merged_digest shards = digest (merge shards)

(* {2 Chrome-trace JSON export}

   Timestamps in the Chrome trace format are microseconds; we emit them as
   fixed-point "<us>.<ns%1000>" strings-of-numbers so nanosecond resolution
   survives and the rendering is deterministic (no float formatting). *)

let add_us buf ns = Buffer.add_string buf (Printf.sprintf "%d.%03d" (ns / 1000) (ns mod 1000))

let add_args buf args =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Json.escape_to buf k;
      Buffer.add_string buf "\":";
      match v with
      | I n -> Buffer.add_string buf (string_of_int n)
      | F f -> Buffer.add_string buf (Json.float_repr f)
      | S s ->
          Buffer.add_char buf '"';
          Json.escape_to buf s;
          Buffer.add_char buf '"')
    args;
  Buffer.add_char buf '}'

let add_meta buf ~first ~name ~pid ~tid ~value =
  if not first then Buffer.add_string buf ",\n";
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\""
       name pid tid);
  Json.escape_to buf value;
  Buffer.add_string buf "\"}}"

let add_ev buf e =
  Buffer.add_string buf "{\"name\":\"";
  Json.escape_to buf e.name;
  Buffer.add_string buf "\",\"cat\":\"";
  Json.escape_to buf e.cat;
  Buffer.add_string buf "\",\"ph\":\"";
  (match e.phase with
  | Instant -> Buffer.add_char buf 'i'
  | Complete _ -> Buffer.add_char buf 'X'
  | Counter -> Buffer.add_char buf 'C');
  Buffer.add_string buf "\",\"ts\":";
  add_us buf e.ts;
  (match e.phase with
  | Complete dur ->
      Buffer.add_string buf ",\"dur\":";
      add_us buf dur
  | Instant -> Buffer.add_string buf ",\"s\":\"t\""
  | Counter -> ());
  Buffer.add_string buf (Printf.sprintf ",\"pid\":%d,\"tid\":%d" e.pid e.tid);
  if e.args <> [] then begin
    Buffer.add_string buf ",\"args\":";
    add_args buf e.args
  end;
  Buffer.add_char buf '}'

let to_chrome_string t =
  let buf = Buffer.create (4096 + (t.len * 96)) in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  let first = ref true in
  List.iter
    (fun (pid, name) ->
      add_meta buf ~first:!first ~name:"process_name" ~pid ~tid:0 ~value:name;
      first := false)
    t.procs;
  List.iter
    (fun (pid, tid, name) ->
      add_meta buf ~first:!first ~name:"thread_name" ~pid ~tid ~value:name;
      first := false)
    t.tracks;
  iter t (fun e ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      add_ev buf e);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_chrome_file t path =
  let oc = open_out path in
  output_string oc (to_chrome_string t);
  close_out oc
