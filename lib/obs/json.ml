(* Minimal JSON: a builder for deterministic machine-readable output and a
   validating parser (used by tests and the `erpc_sim trace` smoke check).
   No external dependency — the values we emit are numbers, short strings
   and flat objects, so a few hundred lines of stdlib suffice. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  escape_to buf s;
  Buffer.contents buf

(* Floats print via %.6g: enough precision for rates and microseconds,
   deterministic for a given value, and always a valid JSON number (%.6g
   never produces "nan"/"inf" for the finite values we emit). *)
let float_repr f =
  let s = Printf.sprintf "%.6g" f in
  (* "%.6g" may yield "1e+06" — valid JSON — but also bare "inf"/"nan" for
     non-finite values; clamp those to null-ish zero rather than emit
     invalid JSON. *)
  if Float.is_finite f then s else "0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      escape_to buf s;
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_to buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* {2 Validation} *)

exception Bad

let validate s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c = if !pos < n && s.[!pos] = c then advance () else raise Bad in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let is_digit c = c >= '0' && c <= '9' in
  let expect_digits () =
    match peek () with
    | Some c when is_digit c ->
        while (match peek () with Some c when is_digit c -> true | _ -> false) do
          advance ()
        done
    | _ -> raise Bad
  in
  let parse_literal lit =
    String.iter (fun c -> expect c) lit
  in
  let parse_string () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> raise Bad
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some c
                  when is_digit c
                       || (c >= 'a' && c <= 'f')
                       || (c >= 'A' && c <= 'F') ->
                    advance ()
                | _ -> raise Bad
              done;
              go ()
          | _ -> raise Bad)
      | Some c when Char.code c < 0x20 -> raise Bad
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let parse_number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    (* Integer part: "0" alone, or a nonzero digit followed by more digits —
       JSON forbids leading zeros. *)
    (match peek () with
    | Some '0' -> advance ()
    | Some c when c >= '1' && c <= '9' -> expect_digits ()
    | _ -> raise Bad);
    (match peek () with
    | Some '.' ->
        advance ();
        expect_digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        expect_digits ()
    | _ -> ()
  in
  let rec parse_value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        (match peek () with
        | Some '}' -> advance ()
        | _ ->
            let rec members () =
              skip_ws ();
              parse_string ();
              skip_ws ();
              expect ':';
              parse_value ();
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ()
              | Some '}' -> advance ()
              | _ -> raise Bad
            in
            members ())
    | Some '[' ->
        advance ();
        skip_ws ();
        (match peek () with
        | Some ']' -> advance ()
        | _ ->
            let rec items () =
              parse_value ();
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items ()
              | Some ']' -> advance ()
              | _ -> raise Bad
            in
            items ())
    | Some '"' -> parse_string ()
    | Some 't' -> parse_literal "true"
    | Some 'f' -> parse_literal "false"
    | Some 'n' -> parse_literal "null"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> raise Bad);
    skip_ws ()
  in
  try
    parse_value ();
    !pos = n
  with Bad -> false
