(** Ring-buffered, sim-time-stamped event trace with a Chrome-trace/Perfetto
    JSON exporter.

    All timestamps are simulation time in nanoseconds, so two same-seed runs
    produce byte-identical traces. Recording is observe-only: it never
    schedules engine work. The shared {!disabled} trace has capacity zero;
    hot-path call sites guard instrumentation with
    [if Trace.enabled tr then ...] so disabled tracing costs one load and a
    branch, with no allocation. *)

type arg = I of int | F of float | S of string

type phase =
  | Instant
  | Complete of int  (** duration in ns *)
  | Counter

type ev = {
  ts : int;  (** sim-time, ns *)
  phase : phase;
  cat : string;
  name : string;
  pid : int;
  tid : int;
  args : (string * arg) list;
}

type t

val create : ?capacity:int -> unit -> t
(** [create ()] makes an enabled trace holding up to [capacity] events
    (default 2^20); once full, the oldest events are evicted and counted in
    {!dropped}. [~capacity:0] yields a disabled trace. *)

val disabled : t
(** The shared no-op trace; every engine starts with it. *)

val enabled : t -> bool
val length : t -> int
val dropped : t -> int
(** Events evicted from the ring after it filled. *)

val fresh_id : t -> int
(** Stable per-trace id source (1, 2, ...); used to stamp packets so events
    from different layers can be joined. Always 0 on {!disabled}, which is
    shared (including across domains) and never mutated. *)

val net_pid : int
(** Chrome pid used for the network fabric (ports, switches, delivery). *)

val host_pid : int -> int
(** Chrome pid for host [h] ([h + 1]; pid 0 is the network). *)

val instant :
  t ->
  ts:int ->
  cat:string ->
  name:string ->
  pid:int ->
  tid:int ->
  (string * arg) list ->
  unit

val complete :
  t ->
  ts:int ->
  dur:int ->
  cat:string ->
  name:string ->
  pid:int ->
  tid:int ->
  (string * arg) list ->
  unit
(** A span: [ts] is the start, [dur] the duration, both in ns. *)

val counter :
  t -> ts:int -> cat:string -> name:string -> pid:int -> (string * arg) list -> unit
(** A counter sample; each numeric arg becomes a series on the counter
    track named [name] under process [pid]. *)

val register_process : t -> pid:int -> string -> unit
(** Name a Chrome process track. Idempotent per (pid, name). *)

val register_track : t -> pid:int -> string -> int
(** Allocate and name a thread track under [pid]; returns the tid.
    Allocation order is deterministic (1, 2, ... per pid). *)

val events : t -> ev list
(** Buffered events, oldest first. *)

val iter : t -> (ev -> unit) -> unit

val digest : t -> string
(** Hex FNV-1a 64 digest over every buffered event's fields (plus the
    eviction count), rendered in ring order. Two traces digest equally iff
    their retained events are identical, making same-seed byte-identity
    checks cheap even for million-event traces where rendering the full
    Chrome JSON would dominate the run. *)

val merge : t list -> t
(** Deterministic merge of per-partition trace shards: a stable sort of
    the concatenated events by (ts, pid), with within-shard order kept for
    equal keys. When every pid is recorded by exactly one shard (hosts are
    owned by exactly one partition), the merged order — and hence
    {!merged_digest} — is independent of how events were sharded. Dropped
    counts are summed; process/track registrations are united. *)

val merged_digest : t list -> string
(** [digest (merge shards)]: the composable cross-shard identity check
    used to assert that [--domains 1] and [--domains N] executed the same
    simulation. *)

val to_chrome_string : t -> string
(** Render as Chrome-trace JSON ({["traceEvents"]} array plus track
    metadata), loadable in chrome://tracing or ui.perfetto.dev. Timestamps
    are microseconds with three decimal places, preserving ns resolution. *)

val write_chrome_file : t -> string -> unit
