(** RPC latency anatomy: decompose sampled end-to-end request latencies into
    serialize / queueing / pacing / NIC / wire / switch-queue / ring-guard /
    server / deserialize components by post-processing a trace (Table 3 of
    the paper, extended with the typed-codec stages and the intra-host
    shared-memory transport).

    Components of each breakdown sum exactly to [total_ns]: each is a
    difference of adjacent trace milestones, except the wire/switch-queue
    pair (which split each wired in-fabric interval without remainder) and
    the four codec terms (traced "codec" spans carved out of — and
    subtracted from — the enclosing client/server software interval; zero
    for untyped workloads). A direction that crossed the shared-memory
    transport instead of the wire contributes its whole transit as
    [ring_ns] with NIC/wire/switch exactly zero for that leg; mixed
    requests (one leg wired, one intra-host) decompose leg by leg. Only
    single-packet requests with single-packet responses and a complete
    milestone set are analyzed; others are skipped. *)

type breakdown = {
  host : int;  (** client host *)
  sn : int;  (** client session number *)
  req : int;  (** request number *)
  total_ns : int;
  req_ser_ns : int;  (** typed request encode on the client (0 if untyped) *)
  client_tx_ns : int;  (** remaining client software until NIC post *)
  pacing_ns : int;  (** pacing-wheel residency (0 when bypassed) *)
  nic_ns : int;  (** NIC tx/rx latency, both directions *)
  wire_ns : int;  (** predicted serialization + cable + switch latency *)
  switch_ns : int;  (** fabric queueing residual over the prediction *)
  ring_ns : int;
      (** shared-memory transit: interconnect hop + unseal/ownership
          guards + ring FIFO wait (0 for fully wired requests) *)
  req_deser_ns : int;  (** typed request decode on the server (0 if untyped) *)
  resp_ser_ns : int;  (** typed response encode on the server (0 if untyped) *)
  server_ns : int;  (** remaining server software including the handler *)
  resp_deser_ns : int;  (** typed response decode on the client (0 if untyped) *)
  client_rx_ns : int;  (** remaining client software from NIC rx to completion *)
}

val kind_req : int
val kind_resp : int
(** Packet-kind codes carried in "pkt info" trace events. *)

val analyze : wire_ns:(int -> int) -> Trace.ev list -> breakdown list
(** [analyze ~wire_ns evs] joins packet, NIC, network, wheel, and sslot
    events into per-request breakdowns, sorted by (host, sn, req).
    [wire_ns size] must predict the pure one-direction fabric time for a
    packet of [size] bytes on an idle network (serialization + cable +
    switch forwarding latency). *)

val components : breakdown -> (string * int) list
(** Labeled components in anatomical order (excludes [total_ns]). *)

val sum_components : breakdown -> int
(** Always equals [total_ns] for breakdowns produced by {!analyze}. *)

val pp_table : Format.formatter -> breakdown list -> unit
(** Table-3-style mean breakdown with per-component shares. *)

(** {2 Tail attribution}

    "Where does the tail come from": compare the mean component breakdown
    of the body of the latency distribution against the slowest samples.
    Google's production observation (P99 requests spending >25% of their
    time in the RPC stack) is exactly this quantity; making it a standard
    per-scenario output lets every load experiment name the component that
    dominates its P99. *)

type attribution = {
  samples : int;  (** breakdowns analyzed *)
  p50_total_ns : int;  (** median end-to-end latency *)
  p99_total_ns : int;  (** P99 end-to-end latency *)
  p999_total_ns : int;  (** P99.9 end-to-end latency *)
  p50_ns : (string * int) list;
      (** mean per-component ns over the body band (samples at or below the
          median), in anatomical order *)
  p99_ns : (string * int) list;
      (** mean per-component ns over the tail band (samples at or above the
          P99 threshold) *)
  p50_dominant : string;  (** largest body-band component *)
  p99_dominant : string;  (** largest tail-band component *)
}

val attribute : breakdown list -> attribution option
(** [None] on an empty list. Band means are deterministic: totals are
    sorted, thresholds taken by rank, ties on dominance resolved in
    anatomical order. *)

val attribution_to_json : attribution -> Json.t
(** Components as [{"component":...,"p50_ns":...,"p99_ns":...,
    "p50_share":...,"p99_share":...}] rows plus the totals and dominant
    labels. *)
