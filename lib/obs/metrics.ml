(* Pull-based metrics registry. Components register named, labeled sources
   (counter/gauge closures or Stats.Hist references) at creation time;
   nothing is sampled until a snapshot is taken, so registration adds zero
   work to the simulation hot path. Snapshots are sorted by (name, labels)
   for deterministic reporting. *)

type source =
  | Counter of (unit -> int)
  | Gauge of (unit -> float)
  | Histogram of Stats.Hist.t

type entry = { name : string; labels : (string * string) list; source : source }

type t = {
  mutable entries : entry list;  (* reverse registration order *)
  keys : (string * (string * string) list, unit) Hashtbl.t;
      (* registered (name, labels) pairs: makes first-time registration
         O(1) — a fabric with tens of thousands of sessions registers one
         gauge per session, and filtering the whole list each time made
         that quadratic *)
}

let create () = { entries = []; keys = Hashtbl.create 64 }

let register t ~name ~labels source =
  (* Re-registering the same (name, labels) replaces the old source, so a
     component recreated mid-run (e.g. a reconnect) does not leave a stale
     closure behind. Only that rare path pays the list walk. *)
  let key = (name, labels) in
  if Hashtbl.mem t.keys key then
    t.entries <- List.filter (fun e -> not (e.name = name && e.labels = labels)) t.entries
  else Hashtbl.add t.keys key ();
  t.entries <- { name; labels; source } :: t.entries

let counter t ~name ?(labels = []) f = register t ~name ~labels (Counter f)
let gauge t ~name ?(labels = []) f = register t ~name ~labels (Gauge f)
let histogram t ~name ?(labels = []) h = register t ~name ~labels (Histogram h)

type sampled =
  | Sample_counter of int
  | Sample_gauge of float
  | Sample_hist of { count : int; mean : float; p50 : int; p99 : int; max : int }

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : sampled;
}

let sample_entry e =
  let v =
    match e.source with
    | Counter f -> Sample_counter (f ())
    | Gauge f -> Sample_gauge (f ())
    | Histogram h ->
        let count = Stats.Hist.count h in
        Sample_hist
          {
            count;
            mean = Stats.Hist.mean h;
            p50 = (if count = 0 then 0 else Stats.Hist.percentile h 50.);
            p99 = (if count = 0 then 0 else Stats.Hist.percentile h 99.);
            max = Stats.Hist.max h;
          }
  in
  { s_name = e.name; s_labels = e.labels; s_value = v }

let snapshot t =
  List.map sample_entry
    (List.sort
       (fun a b ->
         match compare a.name b.name with
         | 0 -> compare a.labels b.labels
         | c -> c)
       t.entries)

let find t ~name ~labels =
  List.find_map
    (fun e ->
      if e.name = name && e.labels = labels then Some (sample_entry e) else None)
    t.entries

let fold_counters t ~name f init =
  List.fold_left
    (fun acc e ->
      match e.source with
      | Counter g when e.name = name -> f acc e.labels (g ())
      | _ -> acc)
    init t.entries

let max_gauge t ~name =
  List.fold_left
    (fun acc e ->
      match e.source with
      | Gauge g when e.name = name -> Float.max acc (g ())
      | _ -> acc)
    0. t.entries

let pp_labels fmt labels =
  if labels <> [] then begin
    Format.fprintf fmt "{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Format.fprintf fmt ",";
        Format.fprintf fmt "%s=%s" k v)
      labels;
    Format.fprintf fmt "}"
  end

let pp fmt t =
  List.iter
    (fun s ->
      Format.fprintf fmt "%s%a " s.s_name pp_labels s.s_labels;
      (match s.s_value with
      | Sample_counter n -> Format.fprintf fmt "%d" n
      | Sample_gauge g -> Format.fprintf fmt "%g" g
      | Sample_hist h ->
          Format.fprintf fmt "n=%d mean=%.1f p50=%d p99=%d max=%d" h.count
            h.mean h.p50 h.p99 h.max);
      Format.fprintf fmt "@.")
    (snapshot t)

let to_json t =
  Json.Arr
    (List.map
       (fun s ->
         let labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.s_labels) in
         let base = [ ("name", Json.Str s.s_name); ("labels", labels) ] in
         Json.Obj
           (base
           @
           match s.s_value with
           | Sample_counter n ->
               [ ("type", Json.Str "counter"); ("value", Json.Int n) ]
           | Sample_gauge g ->
               [ ("type", Json.Str "gauge"); ("value", Json.Float g) ]
           | Sample_hist h ->
               [
                 ("type", Json.Str "histogram");
                 ("count", Json.Int h.count);
                 ("mean", Json.Float h.mean);
                 ("p50", Json.Int h.p50);
                 ("p99", Json.Int h.p99);
                 ("max", Json.Int h.max);
               ]))
       (snapshot t))
