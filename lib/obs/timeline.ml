type t = {
  window_ns : int;
  oks : int array;
  fails : int array;
  lat : Stats.Hist.t array;  (** allocated lazily: most windows see traffic *)
}

let create ~window_ns ~horizon_ns =
  assert (window_ns > 0 && horizon_ns > 0);
  let n = (horizon_ns + window_ns - 1) / window_ns in
  {
    window_ns;
    oks = Array.make n 0;
    fails = Array.make n 0;
    lat = Array.init n (fun _ -> Stats.Hist.create ());
  }

let slot t at_ns =
  let i = at_ns / t.window_ns in
  if i < 0 then 0 else min i (Array.length t.oks - 1)

let ok t ~at_ns ~latency_ns =
  let i = slot t at_ns in
  t.oks.(i) <- t.oks.(i) + 1;
  Stats.Hist.record t.lat.(i) latency_ns

let fail t ~at_ns =
  let i = slot t at_ns in
  t.fails.(i) <- t.fails.(i) + 1

let window_ns t = t.window_ns
let num_windows t = Array.length t.oks
let total_ok t = Array.fold_left ( + ) 0 t.oks
let total_fail t = Array.fold_left ( + ) 0 t.fails

let is_gap t i = t.oks.(i) = 0 && t.fails.(i) > 0

let gaps t =
  let n = ref 0 in
  Array.iteri (fun i _ -> if is_gap t i then incr n) t.oks;
  !n

let longest_gap_ns t =
  let best = ref 0 and cur = ref 0 in
  Array.iteri
    (fun i _ ->
      if is_gap t i then begin
        incr cur;
        if !cur > !best then best := !cur
      end
      else cur := 0)
    t.oks;
  !best * t.window_ns

let windows t =
  List.init (num_windows t) (fun i ->
      let p50, p99 =
        if t.oks.(i) = 0 then (0, 0)
        else (Stats.Hist.median t.lat.(i), Stats.Hist.percentile t.lat.(i) 99.)
      in
      (i * t.window_ns, t.oks.(i), t.fails.(i), p50, p99))

let to_json t =
  Json.Obj
    [
      ("window_ns", Json.Int t.window_ns);
      ( "windows",
        Json.Arr
          (List.map
             (fun (t_ns, ok, fail, p50, p99) ->
               Json.Obj
                 [
                   ("t_ns", Json.Int t_ns);
                   ("ok", Json.Int ok);
                   ("fail", Json.Int fail);
                   ("p50_ns", Json.Int p50);
                   ("p99_ns", Json.Int p99);
                 ])
             (windows t)) );
    ]
