(** Availability timeline: fixed-width time windows counting operation
    outcomes, with a latency histogram per window.

    The chaos harnesses use this to answer "was the service up *through*
    the fault?" rather than only "did it recover?": each completed
    operation is bucketed by completion time into a window (10 ms by
    default), and every window reports successes, failures, and P50/P99
    latency. A window with zero successes is an availability gap.

    Deterministic by construction: windows are pure functions of
    simulation timestamps, and the JSON export renders windows in time
    order with integer fields only. *)

type t

(** [create ~window_ns ~horizon_ns] covers [0, horizon_ns) with
    [horizon_ns / window_ns] (rounded up) windows. Samples past the
    horizon land in the last window. *)
val create : window_ns:int -> horizon_ns:int -> t

(** [ok t ~at_ns ~latency_ns] records a successful operation completing at
    [at_ns] with end-to-end latency [latency_ns]. *)
val ok : t -> at_ns:int -> latency_ns:int -> unit

(** A failed operation (error or deadline exceeded) at [at_ns]. *)
val fail : t -> at_ns:int -> unit

val window_ns : t -> int
val num_windows : t -> int

val total_ok : t -> int
val total_fail : t -> int

(** Number of windows with at least one attempt but zero successes —
    the blackout count an availability SLO bounds. *)
val gaps : t -> int

(** Longest run of consecutive gap windows, in ns. *)
val longest_gap_ns : t -> int

(** Per-window view: [(start_ns, ok, fail, p50_ns, p99_ns)]; percentiles
    are 0 for windows without successes. *)
val windows : t -> (int * int * int * int * int) list

(** [{"window_ns":..,"windows":[{"t_ns":..,"ok":..,"fail":..,
    "p50_ns":..,"p99_ns":..},..]}] *)
val to_json : t -> Json.t
